"""The can-hom baseline: the authors' previous, heterogeneity-oblivious
matchmaker (Kim et al. / Lee et al.), run on the same heterogeneous CAN.

Differences from :class:`~repro.sched.can_het.CanHetMatchmaker`, mirroring
Section V-A's description ("oblivious to heterogeneous resources ... job
push decisions can lead to a poor choice for a run-node, since it is based
on inaccurate aggregated information"):

* only *free* nodes end the search early — there is no acceptable-node
  concept, so an idle GPU behind a busy CPU is invisible;
* pushes steer by the pooled (all-CEs) load aggregate along every
  dimension, not the dominant CE's;
* the final stop picks the minimum *whole-node* utilisation over CPU clock,
  ignoring which CE the job actually stresses.

Capability filtering still applies (the CAN geometry itself guarantees the
run node can eventually run the job in the real system).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..can.aggregation import AggregationEngine
from ..can.overlay import CanOverlay
from ..model.job import Job
from ..model.node import GridNode
from ..obs.profiling import NULL_PROFILER, profiled
from .base import Matchmaker, outward_capable_search
from .score import (
    ai_field,
    min_pooled_score_node,
    pooled_push_objective,
    stop_probability,
)

__all__ = ["CanHomMatchmaker"]


class CanHomMatchmaker(Matchmaker):
    """Heterogeneity-oblivious CAN matchmaking (the prior system)."""

    name = "can-hom"

    def __init__(
        self,
        overlay: CanOverlay,
        grid_nodes: Dict[int, GridNode],
        aggregation: AggregationEngine,
        rng: np.random.Generator,
        stopping_factor: float = 1.0,
        max_hops: int = 64,
    ):
        super().__init__()
        self.overlay = overlay
        self.grid_nodes = grid_nodes
        self.aggregation = aggregation
        self.rng = rng
        self.stopping_factor = stopping_factor
        self.max_hops = max_hops

    def place(self, job: Job) -> Optional[GridNode]:
        prof = self.profiler if self.profiler is not None else NULL_PROFILER
        with prof.scope(f"mm.place.{self.name}"):
            return self._place(job)

    def _place(self, job: Job) -> Optional[GridNode]:
        coord = self.overlay.space.job_coordinate(job, float(self.rng.random()))
        origin = self.overlay.locate_owner(coord)
        current = origin
        visited = {current}
        hops = 0
        for _ in range(self.max_hops):
            candidates = self._local_candidates(current)
            capable = [n for n in candidates if n.capable(job)]
            free = [n for n in capable if n.is_free()]
            if free:
                # Fastest CPU clock among free nodes; can-hom's notion of
                # "most capable" never looks at the GPU.
                chosen = min(
                    free, key=lambda n: (-n.ces["cpu"].spec.clock, n.node_id)
                )
                return self._record_placement(chosen, job, hops)

            target = self._choose_push_target(current, visited)
            if target is None:
                chosen = self._select_min_score(capable)
                if chosen is None:
                    chosen = self._fallback(origin, job)
                return self._record_placement(chosen, job, hops)
            target_id, dim = target
            ai = self.aggregation.advertised(target_id, dim)
            p_stop = stop_probability(
                ai_field(ai, "num_nodes"), self.stopping_factor
            )
            if capable and self.rng.random() < p_stop:
                self.stats.stopped_probabilistically += 1
                return self._record_placement(
                    self._select_min_score(capable), job, hops
                )
            if self.tracer is not None:
                self._trace_push(job, current, target_id, dim, hop=hops)
            current = target_id
            visited.add(current)
            hops += 1
        candidates = self._local_candidates(current)
        capable = [n for n in candidates if n.capable(job)]
        chosen = self._select_min_score(capable)
        if chosen is None:
            chosen = self._fallback(origin, job)
        return self._record_placement(chosen, job, hops)

    @profiled("mm.fallback")
    def _fallback(self, origin: int, job: Job) -> Optional[GridNode]:
        """Expanding-ring search when the push walk met no capable node.

        can-hom still prefers a free node among what the sweep finds, then
        the lowest pooled utilisation — its (CE-blind) selection rule.
        """
        self.stats.fallback_searches += 1
        capable = outward_capable_search(
            self.overlay, self.grid_nodes, origin, job
        )
        if not capable:
            return None
        free = [n for n in capable if n.is_free()]
        if free:
            return min(free, key=lambda n: (-n.ces["cpu"].spec.clock, n.node_id))
        return self._select_min_score(capable)

    def _local_candidates(self, node_id: int) -> List[GridNode]:
        ids = [node_id] + sorted(
            nid
            for nid in self.overlay.neighbors(node_id)
            if self.overlay.is_alive(nid)
        )
        return [self.grid_nodes[nid] for nid in ids if nid in self.grid_nodes]

    @profiled("mm.push_target.eq3")
    def _choose_push_target(
        self, node_id: int, visited: set
    ) -> Optional[Tuple[int, int]]:
        best: Optional[Tuple[int, int]] = None
        best_obj = math.inf
        for dim_obj in self.overlay.space.dimensions:
            dim = dim_obj.index
            for nid in sorted(self.overlay.neighbors_along(node_id, dim, +1)):
                if nid in visited or not self.overlay.is_alive(nid):
                    continue
                if nid not in self.grid_nodes:
                    continue
                obj = pooled_push_objective(self.aggregation.advertised(nid, dim))
                if obj < best_obj:
                    best_obj = obj
                    best = (nid, dim)
        return best

    @profiled("mm.score.eq12")
    def _select_min_score(self, capable: List[GridNode]) -> Optional[GridNode]:
        return min_pooled_score_node(capable)
