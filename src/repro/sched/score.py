"""The paper's scoring equations (Section III-B).

* **Equation 1** (dedicated CE): score = JobQueueSize / ClockSpeed.
* **Equation 2** (non-dedicated CE): score = (RequiredCores / NumberOfCores)
  / ClockSpeed.
* **Equation 3** (push objective): F_D(N, C) =
  AI_D(N, C).SumOfRequiredCores / AI_D(N, C).NumberOfCores².
* **Equation 4** (stop probability): P(N) =
  1 / (1 + AI_TD(N).NumberOfNodes)^SF.

Equations 1/2 prefer the least-utilised node relative to its clock speed
for the job's dominant CE; Equation 3 steers pushes toward regions with
plenty of cores and little outstanding demand; Equation 4 stops pushing
sooner when few nodes remain farther out.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..model.ce import ComputingElement
from ..model.job import Job
from ..model.node import GridNode
from ..can.aggregation import FIELDS

__all__ = [
    "ce_score",
    "node_score",
    "push_objective",
    "stop_probability",
    "pooled_node_score",
    "min_score_node",
    "min_pooled_score_node",
]

_IDX = {name: i for i, name in enumerate(FIELDS)}


def ce_score(ce: ComputingElement) -> float:
    """Equations 1 and 2: utilisation of a CE divided by its clock speed."""
    return ce.utilization_score()


def node_score(node: GridNode, job: Job) -> float:
    """Score of a node for a job, evaluated on the job's dominant CE.

    Nodes lacking the dominant CE score ``inf`` (they cannot run the job).
    """
    ce = node.ce(job.dominant_slot)
    if ce is None:
        return math.inf
    return ce_score(ce)


def pooled_node_score(node: GridNode) -> float:
    """The heterogeneity-*oblivious* score used by the can-hom baseline.

    Whole-node core utilisation over the CPU clock — it cannot tell which
    CE is the loaded one, which is exactly why can-hom misplaces jobs.
    """
    cpu = node.ce("cpu")
    assert cpu is not None  # every node has a CPU
    return node.node_utilization() / cpu.spec.clock


def min_score_node(candidates: List[GridNode], job: Job) -> Optional[GridNode]:
    """Argmin of the Equation 1/2 score over ``candidates`` (ties on id).

    The shared "place on the least-loaded capable node" step of both CAN
    matchmakers; returns ``None`` for an empty candidate list.
    """
    if not candidates:
        return None
    return min(candidates, key=lambda n: (node_score(n, job), n.node_id))


def min_pooled_score_node(candidates: List[GridNode]) -> Optional[GridNode]:
    """Argmin of the pooled (heterogeneity-oblivious) score (ties on id)."""
    if not candidates:
        return None
    return min(candidates, key=lambda n: (pooled_node_score(n), n.node_id))


def push_objective(ai: np.ndarray, use_slot_fields: bool) -> float:
    """Equation 3 on an advertised aggregate vector.

    ``use_slot_fields`` selects the per-CE fields when the push dimension
    belongs to the job's dominant CE slot; other dimensions fall back to the
    pooled (node-level) fields, which is all their aggregates carry.
    """
    if use_slot_fields:
        required = ai[_IDX["slot_required_cores"]]
        cores = ai[_IDX["slot_cores"]]
    else:
        required = ai[_IDX["pool_required_cores"]]
        cores = ai[_IDX["pool_cores"]]
    if cores <= 0:
        return math.inf
    return required / (cores * cores)


def pooled_push_objective(ai: np.ndarray) -> float:
    """Equation 3 with pooled fields only — the can-hom steering signal."""
    return push_objective(ai, use_slot_fields=False)


def stop_probability(num_nodes_beyond: float, stopping_factor: float) -> float:
    """Equation 4: probability to stop pushing at the current node.

    ``num_nodes_beyond`` is AI_TD(N).NumberOfNodes, the (approximate) count
    of nodes farther out along the chosen target dimension.
    """
    if stopping_factor < 0:
        raise ValueError("stopping factor must be non-negative")
    n = max(0.0, float(num_nodes_beyond))
    return 1.0 / (1.0 + n) ** stopping_factor


def ai_field(ai: np.ndarray, name: str) -> float:
    """Read a named field out of an advertised aggregate vector."""
    if name not in _IDX:
        raise ValueError(f"unknown aggregate field {name!r}")
    return float(ai[_IDX[name]])
