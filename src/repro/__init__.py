"""repro — reproduction of "Supporting Computing Element Heterogeneity in
P2P Grids" (Lee, Keleher, Sussman; IEEE CLUSTER 2011).

A peer-to-peer desktop grid built on a resource-coordinate CAN DHT, with
heterogeneity-aware decentralized matchmaking (Algorithm 1, Equations 1-4)
and scalable maintenance via compact/adaptive heartbeats — plus everything
it stands on: a discrete-event simulation kernel, the CAN substrate, the
grid node/job model, synthetic workloads, baselines, and the experiment
harness regenerating every figure of the paper's evaluation.

Quick start::

    from repro.gridsim import GridSimulation, MatchmakingConfig
    from repro.workload import SMALL_LOAD

    result = GridSimulation(MatchmakingConfig(SMALL_LOAD, scheme="can-het")).run()
    print(result.summary())
"""

from . import analysis, can, gridsim, model, obs, sched, sim, workload

__version__ = "1.1.0"

__all__ = [
    "analysis",
    "can",
    "gridsim",
    "model",
    "obs",
    "sched",
    "sim",
    "workload",
    "__version__",
]
