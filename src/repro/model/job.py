"""Jobs: per-CE resource requirements and the dominant-CE rule.

A job is an independent, possibly multi-threaded application (grid
terminology).  It may state requirements for several CE slots; any
unspecified attribute means "any amount is acceptable" (paper, Section V-A).
The *dominant CE* is the slot demanding the most computational resources —
the job's execution time is governed by that CE's clock (Section III-B).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

__all__ = ["CERequirement", "Job"]

_job_ids = itertools.count()


@dataclass(frozen=True)
class CERequirement:
    """Minimum capability demanded from one CE slot.

    ``cores`` is what the job will actually claim while running (defaults
    to 1); ``clock``/``memory``/``disk`` are admission thresholds — a node
    qualifies only when its CE meets them all.
    """

    cores: int = 1
    clock: float = 0.0
    memory: float = 0.0
    disk: float = 0.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("required cores must be positive")
        if min(self.clock, self.memory, self.disk) < 0:
            raise ValueError("requirement thresholds must be non-negative")

    def demand(self) -> float:
        """Scalar resource demand used to pick the dominant CE.

        The paper picks "the CE requiring the most of these other resources
        (e.g. memory, number of cores)".  We combine the two stated examples
        with equal weight after normalising to typical magnitudes (1 core,
        1 GB); the choice of weights only matters for ties between slots.
        """
        return float(self.cores) + float(self.memory)


@dataclass
class Job:
    """One grid job.

    ``base_duration`` is the execution time (seconds) on a CE of nominal
    clock 1.0 with no contention; the node model scales it by the dominant
    CE's actual clock and contention factor at start time.
    """

    requirements: Mapping[str, CERequirement]
    base_duration: float
    submit_time: float = 0.0
    job_id: int = field(default_factory=lambda: next(_job_ids))

    # lifecycle timestamps, filled in by the simulation
    enqueue_time: Optional[float] = None  # placed in run-node queue
    start_time: Optional[float] = None
    finish_time: Optional[float] = None
    run_node_id: Optional[int] = None
    push_hops: int = 0

    def __post_init__(self) -> None:
        if not self.requirements:
            raise ValueError("a job must require at least one CE slot")
        if self.base_duration <= 0:
            raise ValueError("base_duration must be positive")
        self.requirements = dict(self.requirements)

    # -- dominant CE -------------------------------------------------------------
    @property
    def dominant_slot(self) -> str:
        """Slot of the dominant CE: the largest :meth:`CERequirement.demand`.

        Ties break toward the lexicographically smallest slot so the choice
        is deterministic.
        """
        return min(
            self.requirements,
            key=lambda slot: (-self.requirements[slot].demand(), slot),
        )

    @property
    def dominant_requirement(self) -> CERequirement:
        return self.requirements[self.dominant_slot]

    def cores_on(self, slot: str) -> int:
        """Cores the job claims on ``slot`` (0 when the slot is unused)."""
        req = self.requirements.get(slot)
        return req.cores if req is not None else 0

    # -- derived metrics ----------------------------------------------------------
    @property
    def wait_time(self) -> Optional[float]:
        """Run-node queueing delay — the paper's Figure 5/6 metric."""
        if self.enqueue_time is None or self.start_time is None:
            return None
        return self.start_time - self.enqueue_time

    @property
    def turnaround(self) -> Optional[float]:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        reqs = ",".join(sorted(self.requirements))
        return f"<Job {self.job_id} slots=[{reqs}] dom={self.dominant_slot}>"
