"""Computing elements (CEs): specifications and runtime state.

A *computing element* is a physically separate execution unit inside a grid
node — a multi-core CPU, a GPU, or another accelerator (paper, Section I).
CEs come in two flavours:

* **non-dedicated** (CPUs): several jobs may run concurrently on separate
  cores, contending for shared resources;
* **dedicated** (GPUs of the paper's era): exactly one job at a time,
  although that job may be multi-threaded across all the CE's cores.

Nodes carry at most one CE per *slot*.  Slots give heterogeneous resources a
stable identity across the system — slot ``cpu`` has attributes (clock,
memory, disk, cores) and each slot ``gpu<i>`` has (clock, memory, cores) —
and they are what the CAN maps onto coordinate dimensions (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .job import Job

__all__ = ["CPU_SLOT", "gpu_slot", "CESpec", "ComputingElement"]

#: Slot name of the (always present) CPU computing element.
CPU_SLOT = "cpu"


def gpu_slot(index: int) -> str:
    """Name of the ``index``-th (0-based) GPU slot, e.g. ``gpu0``."""
    if index < 0:
        raise ValueError("GPU slot index must be >= 0")
    return f"gpu{index}"


@dataclass(frozen=True)
class CESpec:
    """Static capability description of one computing element.

    ``clock`` is expressed relative to the nominal clock speed (1.0), as in
    the paper: simulated execution time scales inversely with it.  ``memory``
    and ``disk`` are in GB; ``disk`` is only meaningful for the CPU slot.
    """

    slot: str
    clock: float
    memory: float
    cores: int
    disk: float = 0.0
    dedicated: bool = False

    def __post_init__(self) -> None:
        if not self.slot:
            raise ValueError("slot must be non-empty")
        if self.clock <= 0:
            raise ValueError(f"clock must be positive, got {self.clock}")
        if self.memory < 0 or self.disk < 0:
            raise ValueError("memory/disk must be non-negative")
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")

    def attribute(self, name: str) -> float:
        """Read a capability attribute by name (for coordinate mapping)."""
        if name == "clock":
            return self.clock
        if name == "memory":
            return self.memory
        if name == "disk":
            return self.disk
        if name == "cores":
            return float(self.cores)
        raise KeyError(f"unknown CE attribute {name!r}")


class ComputingElement:
    """Runtime state of one CE: the jobs running on it and its FIFO queue.

    The queue holds jobs whose *dominant* CE is this one (Equation 1 of the
    paper scores nodes by ``CE(N, C).JobQueueSize``, i.e. queues are per-CE).
    Secondary-CE usage is tracked in ``running`` but such jobs never appear
    in this CE's queue.
    """

    def __init__(self, spec: CESpec):
        self.spec = spec
        #: jobs currently occupying cores on this CE (dominant or secondary)
        self.running: List["Job"] = []
        #: FIFO of jobs waiting to start whose dominant CE is this one
        self.queue: List["Job"] = []
        #: cores currently claimed by running jobs
        self.cores_in_use: int = 0

    # -- capacity ----------------------------------------------------------------
    @property
    def free_cores(self) -> int:
        return self.spec.cores - self.cores_in_use

    @property
    def idle(self) -> bool:
        """No running jobs and an empty queue."""
        return not self.running and not self.queue

    def can_host(self, cores: int) -> bool:
        """Could a job needing ``cores`` start on this CE right now?

        Dedicated CEs host one job at a time regardless of core count;
        non-dedicated CEs require enough free cores (paper, Section III-B,
        "Dedicated vs. Non-dedicated CE").
        """
        if cores <= 0:
            raise ValueError("cores must be positive")
        if self.spec.dedicated:
            return not self.running
        return self.free_cores >= cores

    # -- job lifecycle -----------------------------------------------------------
    def attach(self, job: "Job", cores: int) -> None:
        """Account a starting job's core claim."""
        if not self.can_host(cores):
            raise RuntimeError(
                f"CE {self.spec.slot} cannot host {cores} cores "
                f"(free={self.free_cores}, dedicated={self.spec.dedicated}, "
                f"running={len(self.running)})"
            )
        self.running.append(job)
        self.cores_in_use += cores

    def detach(self, job: "Job", cores: int) -> None:
        """Release a finished job's core claim."""
        self.running.remove(job)
        self.cores_in_use -= cores
        if self.cores_in_use < 0:
            raise RuntimeError(f"CE {self.spec.slot} core accounting underflow")

    # -- load metrics used by the score functions --------------------------------
    @property
    def job_queue_size(self) -> int:
        """Running + queued jobs — Equation 1's ``JobQueueSize``."""
        return len(self.running) + len(self.queue)

    def required_cores(self) -> int:
        """Cores demanded by running and waiting jobs — Equation 2 numerator.

        Waiting jobs contribute the cores they will claim on this CE.
        """
        waiting = sum(job.cores_on(self.spec.slot) for job in self.queue)
        return self.cores_in_use + waiting

    def utilization_score(self) -> float:
        """Equations 1 and 2: core utilization divided by clock speed."""
        if self.spec.dedicated:
            utilization = float(self.job_queue_size)
        else:
            utilization = self.required_cores() / self.spec.cores
        return utilization / self.spec.clock

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dedicated" if self.spec.dedicated else "shared"
        return (
            f"<CE {self.spec.slot} {kind} clock={self.spec.clock:g} "
            f"cores={self.cores_in_use}/{self.spec.cores} "
            f"queue={len(self.queue)}>"
        )


def specs_by_slot(specs: List[CESpec]) -> Dict[str, CESpec]:
    """Index CE specs by slot, rejecting duplicates."""
    out: Dict[str, CESpec] = {}
    for spec in specs:
        if spec.slot in out:
            raise ValueError(f"duplicate CE slot {spec.slot!r}")
        out[spec.slot] = spec
    return out
