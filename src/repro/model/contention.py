"""Contention model for co-running jobs on non-dedicated CEs.

The paper relies on two empirical findings from the authors' prior work
(Lee et al., IPDPS 2010) without restating the numbers:

1. jobs sharing a non-dedicated CE (a multi-core CPU) contend for shared
   resources and slow each other down "significantly";
2. there is **no significant contention between separate CEs** (e.g. a CPU
   job and a GPU job on the same node do not slow each other).

We therefore model contention as a per-CE multiplicative slowdown that grows
with the number of co-running jobs on that CE only.  The default linear
model is conservative; the coefficients are configurable because the paper's
conclusions depend only on contention *existing*, not on its exact shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ce import ComputingElement

__all__ = ["ContentionModel"]


@dataclass(frozen=True)
class ContentionModel:
    """Multiplicative slowdown for a job starting on a CE.

    ``slowdown = min(max_factor, 1 + alpha * co_runners)`` where
    ``co_runners`` is the number of other jobs already on the CE.  Dedicated
    CEs never co-run jobs, so their factor is always 1.
    """

    alpha: float = 0.15
    max_factor: float = 2.5

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if self.max_factor < 1.0:
            raise ValueError("max_factor must be >= 1")

    def factor(self, ce: ComputingElement) -> float:
        """Slowdown for a job about to start on ``ce`` (before attach)."""
        if ce.spec.dedicated:
            return 1.0
        co_runners = len(ce.running)
        return min(self.max_factor, 1.0 + self.alpha * co_runners)

    def execution_time(self, base_duration: float, ce: ComputingElement) -> float:
        """Wall-clock run time of a job on ``ce``.

        Base duration is defined at nominal clock 1.0, scaled inversely by
        the CE clock (paper, Section V-A) and stretched by contention.
        """
        if base_duration <= 0:
            raise ValueError("base_duration must be positive")
        return base_duration / ce.spec.clock * self.factor(ce)
