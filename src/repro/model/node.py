"""Grid nodes: a bundle of CEs with per-CE FIFO queues and a job engine.

A :class:`GridNode` owns one CPU CE and zero or more GPU CEs.  Jobs are
enqueued on their dominant CE's FIFO queue and start as soon as the head of
that queue can claim cores on *every* CE it requires (dedicated CEs must be
idle, non-dedicated CEs need enough free cores).  Completions are scheduled
on the node's clock; finishing a job re-dispatches the queues.

The node is written against the :class:`~repro.sim.clock.Clock` seam —
anything with a ``now`` property and ``schedule_callback(delay, fn)``.  A
DES :class:`~repro.sim.core.Environment` satisfies it directly (virtual
time), and the live service hands nodes an
:class:`~repro.service.aclock.AsyncioClock` (dilated wall time); the job
engine is identical under both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..sim.clock import Clock
from ..sim.core import Environment
from .ce import CESpec, ComputingElement, CPU_SLOT, specs_by_slot
from .contention import ContentionModel
from .job import Job

__all__ = ["NodeSpec", "GridNode"]


@dataclass(frozen=True)
class NodeSpec:
    """Immutable hardware description of a grid node."""

    node_id: int
    ces: Tuple[CESpec, ...]

    def __post_init__(self) -> None:
        slots = specs_by_slot(list(self.ces))  # validates duplicates
        if CPU_SLOT not in slots:
            raise ValueError(f"node {self.node_id} lacks a {CPU_SLOT!r} CE")

    @property
    def slots(self) -> Tuple[str, ...]:
        return tuple(spec.slot for spec in self.ces)

    def ce_spec(self, slot: str) -> Optional[CESpec]:
        for spec in self.ces:
            if spec.slot == slot:
                return spec
        return None

    @property
    def cpu(self) -> CESpec:
        spec = self.ce_spec(CPU_SLOT)
        assert spec is not None  # guaranteed by __post_init__
        return spec


class GridNode:
    """Runtime node: CE state, FIFO queues, and job start/finish engine."""

    def __init__(
        self,
        spec: NodeSpec,
        env: Union[Environment, Clock],
        contention: Optional[ContentionModel] = None,
        on_job_finished: Optional[Callable[["GridNode", Job], None]] = None,
        on_job_started: Optional[Callable[["GridNode", Job], None]] = None,
    ):
        self.spec = spec
        self.env = env
        self.contention = contention or ContentionModel()
        self.on_job_finished = on_job_finished
        self.on_job_started = on_job_started
        self.ces: Dict[str, ComputingElement] = {
            ce.slot: ComputingElement(ce) for ce in spec.ces
        }
        self.completed_jobs: int = 0
        self.alive: bool = True

    @property
    def node_id(self) -> int:
        return self.spec.node_id

    # -- predicates used by matchmaking ------------------------------------------
    def capable(self, job: Job) -> bool:
        """Does this node's hardware satisfy every requirement of ``job``?

        This is a static check (capability, not current load): for each
        required slot the node must own a CE meeting the clock/memory/disk
        thresholds with at least the required number of cores.
        """
        for slot, req in job.requirements.items():
            ce = self.ces.get(slot)
            if ce is None:
                return False
            spec = ce.spec
            if (
                spec.clock < req.clock
                or spec.memory < req.memory
                or spec.disk < req.disk
                or spec.cores < req.cores
            ):
                return False
        return True

    def is_free(self) -> bool:
        """Free node: no running or waiting jobs on any CE (paper, Sec. II-B)."""
        return all(ce.idle for ce in self.ces.values())

    def is_acceptable(self, job: Job) -> bool:
        """Acceptable node: ``job`` could start executing immediately.

        Requires capability, an empty queue on the dominant CE (FIFO order
        would otherwise delay the job), and immediate core availability on
        every required CE (paper, Section III-B, "Acceptable node").
        """
        if not self.capable(job):
            return False
        if self.ces[job.dominant_slot].queue:
            return False
        return all(
            self.ces[slot].can_host(req.cores)
            for slot, req in job.requirements.items()
        )

    # -- score inputs --------------------------------------------------------------
    def ce(self, slot: str) -> Optional[ComputingElement]:
        return self.ces.get(slot)

    def dominant_clock(self, job: Job) -> float:
        """Clock speed of this node's CE for the job's dominant slot (0 if absent)."""
        ce = self.ces.get(job.dominant_slot)
        return ce.spec.clock if ce is not None else 0.0

    def node_utilization(self) -> float:
        """Whole-node core utilization over all CEs, pooled.

        This is the heterogeneity-*oblivious* load signal the can-hom
        baseline steers by: it cannot distinguish a busy GPU from a busy CPU.
        """
        total = sum(ce.spec.cores for ce in self.ces.values())
        demand = sum(ce.required_cores() for ce in self.ces.values())
        return demand / total if total else 0.0

    def queued_jobs(self) -> int:
        return sum(len(ce.queue) for ce in self.ces.values())

    def running_jobs(self) -> int:
        # A job running on several CEs is counted once (by dominant slot).
        seen = set()
        for ce in self.ces.values():
            for job in ce.running:
                seen.add(job.job_id)
        return len(seen)

    # -- job lifecycle --------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Place ``job`` in its dominant CE's FIFO queue and dispatch."""
        if not self.alive:
            raise RuntimeError(f"node {self.node_id} is not alive")
        if not self.capable(job):
            raise RuntimeError(
                f"node {self.node_id} cannot run job {job.job_id}; "
                "matchmaking must route only to capable nodes"
            )
        job.enqueue_time = self.env.now
        job.run_node_id = self.node_id
        self.ces[job.dominant_slot].queue.append(job)
        self._dispatch()

    def _startable(self, job: Job) -> bool:
        return all(
            self.ces[slot].can_host(req.cores)
            for slot, req in job.requirements.items()
        )

    def _dispatch(self) -> None:
        """Start every queue head that can claim its cores (FIFO per CE)."""
        for ce in self.ces.values():
            while ce.queue and self._startable(ce.queue[0]):
                self._start(ce.queue.pop(0))

    def _start(self, job: Job) -> None:
        dominant = self.ces[job.dominant_slot]
        # Contention factor is sampled before attaching, i.e. against the
        # jobs already on the dominant CE, and stays fixed for the job's
        # lifetime (a documented simplification; see DESIGN.md).
        duration = self.contention.execution_time(job.base_duration, dominant)
        for slot, req in job.requirements.items():
            self.ces[slot].attach(job, req.cores)
        job.start_time = self.env.now
        if self.on_job_started is not None:
            self.on_job_started(self, job)
        self.env.schedule_callback(duration, lambda j=job: self._finish(j))

    def _finish(self, job: Job) -> None:
        if not self.alive:
            return  # node failed while the job ran; the job is lost
        for slot, req in job.requirements.items():
            self.ces[slot].detach(job, req.cores)
        job.finish_time = self.env.now
        self.completed_jobs += 1
        if self.on_job_finished is not None:
            self.on_job_finished(self, job)
        self._dispatch()

    def fail(self) -> List[Job]:
        """Mark the node dead; return jobs (running+queued) that are lost."""
        self.alive = False
        lost: List[Job] = []
        seen = set()
        for ce in self.ces.values():
            for job in ce.running:
                if job.job_id not in seen:
                    seen.add(job.job_id)
                    lost.append(job)
            lost.extend(ce.queue)
            ce.queue.clear()
        return lost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ces = ", ".join(repr(ce) for ce in self.ces.values())
        return f"<GridNode {self.node_id} [{ces}]>"
