"""Grid domain model: computing elements, jobs, nodes, contention."""

from .ce import CESpec, ComputingElement, CPU_SLOT, gpu_slot
from .contention import ContentionModel
from .job import CERequirement, Job
from .node import GridNode, NodeSpec

__all__ = [
    "CESpec",
    "ComputingElement",
    "CPU_SLOT",
    "gpu_slot",
    "ContentionModel",
    "CERequirement",
    "Job",
    "GridNode",
    "NodeSpec",
]
