"""Greedy CAN routing.

A message routes toward a target coordinate by repeatedly forwarding to the
neighbor whose zone is closest to the target, until the current node's zone
contains it.  Distance from a point to an axis-aligned box is the Euclidean
norm of the per-axis clamp residuals, which strictly decreases along a
greedy path in a partitioned space — so routing terminates.

The matchmaking experiments use :func:`route` both to place a job at its
coordinate (Algorithm 1, line 1) and to measure routing path lengths.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from ..overlay.base import SubstrateError
from .geometry import Zone
from .overlay import CanOverlay

__all__ = [
    "zone_distance",
    "route",
    "route_on_beliefs",
    "BeliefRouteResult",
    "RoutingError",
]


class RoutingError(SubstrateError):
    """Greedy routing failed to make progress (should not happen in a
    consistent overlay; indicates a partition violation).

    A :class:`~repro.overlay.SubstrateError`, like Chord's
    :class:`~repro.chord.ring.ChordError` — substrate-generic callers
    catch the shared base instead of per-substrate types."""


def zone_distance(zone: Zone, point: Sequence[float]) -> float:
    """Euclidean distance from ``point`` to the closest point of ``zone``."""
    if len(point) != zone.dims:
        raise ValueError("dimensionality mismatch")
    total = 0.0
    for p, lo, hi in zip(point, zone.lo, zone.hi):
        if p < lo:
            total += (lo - p) ** 2
        elif p > hi:
            total += (p - hi) ** 2
    return math.sqrt(total)


def _node_distance(overlay: CanOverlay, node_id: int, point: Tuple[float, ...]) -> float:
    return min(zone_distance(z, point) for z in overlay.zones_of(node_id))


def route(
    overlay: CanOverlay,
    start_id: int,
    point: Sequence[float],
    max_hops: int = 10_000,
    profiler=None,
) -> List[int]:
    """Greedy path of node ids from ``start_id`` to the owner of ``point``.

    ``profiler`` (a :class:`repro.obs.Profiler`) times the whole walk under
    a ``can.route`` scope; ``None`` — the default — adds no work.
    """
    if profiler is not None and profiler.enabled:
        profiler.push("can.route")
        try:
            return route(overlay, start_id, point, max_hops)
        finally:
            profiler.pop()
    point = tuple(float(p) for p in point)
    current = start_id
    path = [current]
    current_dist = _node_distance(overlay, current, point)
    for _ in range(max_hops):
        if any(z.contains_closed(point) for z in overlay.zones_of(current)):
            return path
        best_id = None
        best_dist = current_dist
        for nid in overlay.neighbors(current):
            if not overlay.is_alive(nid):
                continue
            d = _node_distance(overlay, nid, point)
            if d < best_dist or (d == best_dist and best_id is None and d < current_dist):
                best_dist = d
                best_id = nid
        if best_id is None:
            raise RoutingError(
                f"no progress from node {current} toward {point}"
            )
        current = best_id
        current_dist = best_dist
        path.append(current)
    raise RoutingError(f"exceeded {max_hops} hops")


class BeliefRouteResult:
    """Outcome of routing over *believed* neighbor tables.

    ``delivered`` is False when the greedy walk got stuck — typically
    because a broken link hid the neighbor that would have made progress.
    This turns the abstract broken-link count of Figure 7 into its concrete
    consequence: undeliverable messages.
    """

    __slots__ = ("path", "delivered", "stuck_at")

    def __init__(self, path: List[int], delivered: bool):
        self.path = path
        self.delivered = delivered
        self.stuck_at = None if delivered else path[-1]

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "delivered" if self.delivered else f"stuck@{self.stuck_at}"
        return f"<BeliefRoute {state} hops={self.hops}>"


def route_on_beliefs(
    protocol,
    start_id: int,
    point: Sequence[float],
    max_hops: int = 10_000,
    profiler=None,
) -> BeliefRouteResult:
    """Greedy-route using only what each node *believes* about its neighbors.

    Unlike :func:`route` (which reads ground truth), every forwarding
    decision here uses the current hop's believed neighbor records — zones
    as last advertised.  Messages to dead nodes are lost (the walk treats
    the hop as unusable); missing neighbors are simply invisible.

    ``protocol`` is a :class:`~repro.can.heartbeat.HeartbeatProtocol`.
    """
    if profiler is not None and profiler.enabled:
        profiler.push("can.route_on_beliefs")
        try:
            return route_on_beliefs(protocol, start_id, point, max_hops)
        finally:
            profiler.pop()
    overlay = protocol.overlay
    point = tuple(float(p) for p in point)
    current = start_id
    path = [current]
    current_dist = _node_distance(overlay, current, point)
    for _ in range(max_hops):
        if any(z.contains_closed(point) for z in overlay.zones_of(current)):
            return BeliefRouteResult(path, delivered=True)
        pnode = protocol.nodes.get(current)
        if pnode is None:
            return BeliefRouteResult(path, delivered=False)
        best_id = None
        best_dist = current_dist
        for rec in pnode.table.records():
            if not overlay.is_alive(rec.node_id):
                continue  # forwarding to a ghost loses the message
            d = min(zone_distance(z, point) for z in rec.zones)
            if d < best_dist:
                best_dist = d
                best_id = rec.node_id
        if best_id is None:
            return BeliefRouteResult(path, delivered=False)
        current = best_id
        current_dist = _node_distance(overlay, current, point)
        path.append(current)
    return BeliefRouteResult(path, delivered=False)
