"""Message types and the byte-size model for CAN maintenance traffic.

Figure 8(b) of the paper compares heartbeat *volume* across schemes, so we
need a consistent wire-size model rather than real serialisation.  Sizes are
composed from:

* a fixed header (sender id, message type, timestamp, epoch);
* *neighbor records* — id, version, zone box (2 floats per dimension per
  zone), coordinate (1 float per dimension), and a fixed load block.  A
  record is O(d);
* *aggregated load info* — one compact block per dimension (the dimension's
  owning CE slot only, plus two node-level counters), O(1) per dimension,
  O(d) in total.  This matches the paper's claim that compact heartbeats
  are O(d): a vanilla heartbeat additionally carries O(d) records of O(d)
  bytes each, hence O(d²).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["MessageType", "SizeModel"]


class MessageType(enum.Enum):
    HEARTBEAT = "heartbeat"  # compact: own record + aggregates
    HEARTBEAT_FULL = "heartbeat_full"  # vanilla / to take-over nodes
    JOIN_REPLY = "join_reply"  # splitter -> newcomer: neighbor slice
    JOIN_NOTIFY = "join_notify"  # splitter -> neighbors: newcomer + new zone
    HANDOFF = "handoff"  # graceful leaver -> take-over node
    TAKEOVER_NOTIFY = "takeover_notify"  # claimant -> vacated zone's neighbors
    FULL_UPDATE_REQUEST = "full_update_request"  # adaptive: gap detected
    FULL_UPDATE_REPLY = "full_update_reply"  # adaptive: full table answer


@dataclass(frozen=True)
class SizeModel:
    """Byte-size accounting for protocol messages.

    All constants are plausible wire sizes; only relative growth with the
    dimension count matters for the reproduced figures.
    """

    header_bytes: int = 48
    id_bytes: int = 8
    version_bytes: int = 8
    float_bytes: int = 8
    load_block_bytes: int = 24  # per-record current load summary
    #: per-dimension aggregate block: node-level (count, free) + the owning
    #: slot's (required, cores, queue, idle) as floats
    agg_fields_per_dim: int = 6

    def record_bytes(self, dims: int, zones: int = 1) -> int:
        """One neighbor record: id, version, zone box(es), coordinate, load."""
        if dims <= 0 or zones <= 0:
            raise ValueError("dims and zones must be positive")
        return (
            self.id_bytes
            + self.version_bytes
            + zones * 2 * dims * self.float_bytes
            + dims * self.float_bytes
            + self.load_block_bytes
        )

    def record_base_bytes(self, dims: int) -> int:
        """The zone-count-independent part of :meth:`record_bytes`."""
        if dims <= 0:
            raise ValueError("dims must be positive")
        return (
            self.id_bytes
            + self.version_bytes
            + dims * self.float_bytes
            + self.load_block_bytes
        )

    def table_records_bytes(self, dims: int, records: int, total_zones: int) -> int:
        """Sum of :meth:`record_bytes` over a table, from incremental totals.

        ``total_zones`` must be ``sum(max(zone_count, 1))`` over the records
        (as :class:`~repro.can.neighbor.NeighborTable` maintains), making
        this O(1) where summing per-record sizes is O(records).
        """
        if records < 0 or total_zones < records:
            raise ValueError("need records >= 0 and total_zones >= records")
        return (
            records * self.record_base_bytes(dims)
            + total_zones * 2 * dims * self.float_bytes
        )

    def aggregates_bytes(self, dims: int) -> int:
        """Piggybacked per-dimension aggregated load info (O(d) total)."""
        return dims * self.agg_fields_per_dim * self.float_bytes

    def heartbeat_bytes(
        self, dims: int, own_zones: int, full_records_zone_counts: "list[int] | None"
    ) -> int:
        """A heartbeat: own record + aggregates (+ full table when included).

        ``full_records_zone_counts`` lists the zone count of every neighbor
        record included (``None`` for a compact heartbeat).
        """
        size = (
            self.header_bytes
            + self.record_bytes(dims, own_zones)
            + self.aggregates_bytes(dims)
        )
        if full_records_zone_counts is not None:
            for zc in full_records_zone_counts:
                size += self.record_bytes(dims, max(zc, 1))
        return size

    def heartbeat_bytes_from_totals(
        self, dims: int, own_zones: int, records: int, total_zones: int
    ) -> int:
        """O(1) equivalent of :meth:`heartbeat_bytes` for a full heartbeat."""
        return (
            self.header_bytes
            + self.record_bytes(dims, own_zones)
            + self.aggregates_bytes(dims)
            + self.table_records_bytes(dims, records, total_zones)
        )

    def table_bytes(self, dims: int, zone_counts: "list[int]") -> int:
        """A bare table payload (join reply, hand-off, full-update reply)."""
        size = self.header_bytes
        for zc in zone_counts:
            size += self.record_bytes(dims, max(zc, 1))
        return size

    def table_bytes_from_totals(
        self, dims: int, records: int, total_zones: int
    ) -> int:
        """O(1) equivalent of :meth:`table_bytes` from incremental totals."""
        return self.header_bytes + self.table_records_bytes(
            dims, records, total_zones
        )

    def notify_bytes(self, dims: int, records: int = 2) -> int:
        """Join/take-over notifications: a couple of records."""
        return self.header_bytes + records * self.record_bytes(dims)

    def request_bytes(self) -> int:
        """Full-update request: header only."""
        return self.header_bytes
