"""Local broken-link detection via zone-face coverage (Section IV-C).

A node can detect a broken link *locally*: zones partition the space, so
every interior face of its zone must be exactly tiled by neighbor zones.
If the believed neighbor table leaves part of a face uncovered, some
neighbor is missing — a broken link — and the adaptive heartbeat scheme
reacts by broadcasting a full-update request.

The geometric core is the measure of a union of axis-aligned boxes inside a
bounded region, computed by recursive coordinate sweep: split the region
along one axis at the boxes' boundaries, and recurse on the remaining axes
with the boxes clipped to each slab.  Candidate sets per face are small (the
few neighbors abutting that side), so the recursion stays cheap even in the
paper's 14-dimensional CANs.

Caveat (also in DESIGN.md): the check trusts the *believed* zones.  A stale
record whose advertised zone spuriously covers a vacated area hides the gap
— which is exactly why adaptive heartbeat is slightly less resilient than
vanilla in Figure 7.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .geometry import Zone

__all__ = ["Face", "face_of", "union_measure", "uncovered_fraction", "find_gaps", "has_gap"]

_EPS = 1e-12

#: a (d-1)-dimensional axis-aligned box: per-axis (lo, hi) intervals
Box = Tuple[Tuple[float, float], ...]


class Face:
    """One face of a zone: the boundary plane position plus its extent."""

    __slots__ = ("dim", "side", "plane", "box")

    def __init__(self, dim: int, side: int, plane: float, box: Box):
        self.dim = dim
        self.side = side  # +1: high face, -1: low face
        self.plane = plane
        self.box = box  # extents along every axis except ``dim``

    def area(self) -> float:
        a = 1.0
        for lo, hi in self.box:
            a *= hi - lo
        return a

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Face dim={self.dim} side={self.side:+d} at {self.plane:g}>"


def face_of(zone: Zone, dim: int, side: int) -> Face:
    """The (dim, side) face of ``zone``."""
    if side not in (-1, +1):
        raise ValueError("side must be +1 or -1")
    if not 0 <= dim < zone.dims:
        raise ValueError(f"dim {dim} out of range")
    plane = zone.hi[dim] if side == +1 else zone.lo[dim]
    box = tuple(
        (zone.lo[d], zone.hi[d]) for d in range(zone.dims) if d != dim
    )
    return Face(dim, side, plane, box)


def _project(zone: Zone, face: Face) -> Optional[Box]:
    """Project a neighbor zone onto a face plane; None when it misses.

    The zone contributes iff it sits flush against the plane from the other
    side and overlaps the face's extent with positive measure.
    """
    other_coord = zone.lo[face.dim] if face.side == +1 else zone.hi[face.dim]
    if abs(other_coord - face.plane) > _EPS:
        return None
    box: List[Tuple[float, float]] = []
    axes = [d for d in range(zone.dims) if d != face.dim]
    for (flo, fhi), d in zip(face.box, axes):
        lo = max(flo, zone.lo[d])
        hi = min(fhi, zone.hi[d])
        if hi - lo <= _EPS:
            return None
        box.append((lo, hi))
    return tuple(box)


def union_measure(boxes: Sequence[Box], region: Box) -> float:
    """Measure of (union of boxes) ∩ region, all axis-aligned.

    Recursive coordinate sweep: elementary slabs along the first axis, then
    recurse over the remaining axes with the overlapping boxes.
    """
    region_vol = 1.0
    for lo, hi in region:
        if hi - lo <= 0:
            return 0.0
        region_vol *= hi - lo
    if not boxes:
        return 0.0
    # fast path: one box covers the whole region
    for box in boxes:
        if all(
            blo <= rlo + _EPS and bhi >= rhi - _EPS
            for (blo, bhi), (rlo, rhi) in zip(box, region)
        ):
            return region_vol
    (rlo, rhi) = region[0]
    cuts = {rlo, rhi}
    for box in boxes:
        lo, hi = box[0]
        if rlo < lo < rhi:
            cuts.add(lo)
        if rlo < hi < rhi:
            cuts.add(hi)
    points = sorted(cuts)
    total = 0.0
    sub_region = region[1:]
    for a, b in zip(points[:-1], points[1:]):
        if b - a <= _EPS:
            continue
        mid = (a + b) / 2.0
        slab_boxes = [box[1:] for box in boxes if box[0][0] <= mid <= box[0][1]]
        if not slab_boxes:
            continue
        if sub_region:
            total += (b - a) * union_measure(slab_boxes, sub_region)
        else:
            total += b - a  # 1-D region: the slab itself is covered
    return total


def uncovered_fraction(
    face: Face, neighbor_zones: Iterable[Zone]
) -> float:
    """Fraction of the face's area not tiled by the given zones."""
    area = face.area()
    if area <= 0:
        return 0.0
    projections = []
    for zone in neighbor_zones:
        proj = _project(zone, face)
        if proj is not None:
            projections.append(proj)
    covered = union_measure(projections, face.box)
    return max(0.0, 1.0 - covered / area)


def find_gaps(
    own_zones: Sequence[Zone],
    believed_zones: Sequence[Zone],
    space_lo: Sequence[float],
    space_hi: Sequence[float],
    tolerance: float = 1e-6,
) -> List[Face]:
    """Faces of ``own_zones`` not fully covered by believed neighbors.

    Faces on the outer boundary of the coordinate space have no neighbor by
    construction and are skipped, as are faces internal to the node's own
    zone set (a node trivially knows itself).
    """
    candidates = list(believed_zones) + list(own_zones)
    gaps: List[Face] = []
    for zone in own_zones:
        for dim in range(zone.dims):
            for side in (+1, -1):
                plane = zone.hi[dim] if side == +1 else zone.lo[dim]
                boundary = space_hi[dim] if side == +1 else space_lo[dim]
                if abs(plane - boundary) <= _EPS:
                    continue  # outer wall of the space
                face = face_of(zone, dim, side)
                others = [z for z in candidates if z is not zone]
                if uncovered_fraction(face, others) > tolerance:
                    gaps.append(face)
    return gaps


def has_gap(
    own_zones: Sequence[Zone],
    believed_zones: Sequence[Zone],
    space_lo: Sequence[float],
    space_hi: Sequence[float],
    tolerance: float = 1e-6,
) -> bool:
    """Fast boolean coverage check used by the protocol's gap detector.

    Zones of a consistent partition are disjoint, so the covered measure of
    a face equals the *sum* of the candidate projections' areas — no union
    computation needed.  When stale believed records overlap fresh ones the
    sum over-counts, so this test can only err toward "covered" (missing a
    gap) — which is the local detector's honest failure mode anyway, never
    toward a false alarm.

    All 2*d faces of an own zone are checked in one vectorised batch: the
    candidate boxes are clipped to the zone once, and the per-face covered
    area is an exclude-one-axis product over the clipped extents.
    """
    if not own_zones:
        return False
    dims = own_zones[0].dims
    candidates = list(believed_zones) + list(own_zones)
    # one conversion pass for both bounds: tuple concatenation is cheap
    # next to the per-element float conversions a second np.array costs
    bounds = np.array([z.lo + z.hi for z in candidates])  # (n, 2d)
    los = bounds[:, :dims]  # (n, d)
    his = bounds[:, dims:]
    lo_wall = np.asarray(space_lo, dtype=float)
    hi_wall = np.asarray(space_hi, dtype=float)
    n = len(candidates)
    ones = np.ones((n, 1))
    for zone in own_zones:
        zlo = np.asarray(zone.lo, dtype=float)
        zhi = np.asarray(zone.hi, dtype=float)
        # clip every candidate to the zone's extent (shared by all faces)
        ext = np.minimum(his, zhi) - np.maximum(los, zlo)  # (n, d)
        pos = ext > _EPS
        nonpos = (~pos).sum(axis=1)
        # prod of ext over all axes but one: left * right cumulative products
        left = np.cumprod(np.hstack((ones, ext[:, :-1])), axis=1)
        right = np.cumprod(
            np.hstack((ones, ext[:, :0:-1])), axis=1
        )[:, ::-1]
        areas = left * right  # (n, d): projection area onto face of axis k
        # a candidate covers part of face k iff every *other* clipped axis
        # has positive extent (the face axis itself is flush, extent 0)
        valid = (nonpos == 0)[:, None] | ((nonpos == 1)[:, None] & ~pos)
        not_self = np.fromiter(
            (cand is not zone for cand in candidates), bool, n
        )[:, None]
        face_edges = zhi - zlo
        f_left = np.cumprod(np.concatenate(([1.0], face_edges[:-1])))
        f_right = np.cumprod(
            np.concatenate(([1.0], face_edges[:0:-1]))
        )[::-1]
        face_areas = f_left * f_right  # (d,)
        threshold = face_areas * (1.0 - tolerance)
        for side_flush, planes, walls in (
            (los, zhi, hi_wall),  # high faces: candidate lo flush at zone hi
            (his, zlo, lo_wall),  # low faces: candidate hi flush at zone lo
        ):
            interior = np.abs(planes - walls) > _EPS  # (d,)
            if not interior.any():
                continue
            flush = np.abs(side_flush - planes[None, :]) <= _EPS  # (n, d)
            contrib = flush & valid & not_self
            covered = (areas * contrib).sum(axis=0)  # (d,)
            if (interior & (covered < threshold)).any():
                return True
    return False
