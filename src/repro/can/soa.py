"""Struct-of-arrays hot state for the heartbeat protocol (the array engine).

The object engine (:mod:`repro.can.heartbeat`) keeps per-node believed
tables as dict-of-dict freshness bookkeeping; every heartbeat round then
walks O(nodes x degree) Python dict entries just to advance last-heard
timestamps and scan for timeouts.  This module keeps the same *semantics*
but moves the per-edge hot state — freshness, believed versions, reverse
adjacency — into flat numpy arrays shared by all tables, so the per-round
work becomes a handful of vectorised kernels plus a short Python loop over
the exceptional cases.

Design in brief:

* :class:`EdgeStore` owns slot arrays indexed by *edge* (one slot per
  believed-table entry: ``owner`` believes ``subject``): ``eh`` (last
  heard), ``owner_row``/``subj_row`` (node row indices), ``rev`` (the
  reverse edge's slot, -1 when the belief is not mutual), and
  ``edge_version`` (the believed record's version).  Per-node rows carry
  ``alive``, ``own_version`` and a table-epoch mirror.  Node rows are
  allocated monotonically and never reused (node ids never recur), so a
  stale ``subj_row`` always points at a permanently-dead row.

* :class:`ArrayNeighborTable` subclasses
  :class:`~repro.can.neighbor.NeighborTable` and reroutes every freshness
  access to the store's arrays; the structural side (records, epochs,
  copy-on-write snapshots) keeps the parent's dict machinery.  Because the
  whole protocol manipulates tables through this interface, the object
  engine's code paths (joins, claims, gap repair, message loss) run
  unchanged — and byte-identically — on array-backed state.

* :class:`ArrayHeartbeatProtocol` replaces the two per-round hot phases.
  The exchange phase computes, per round, the set of *exceptional* edges
  ``X`` (reverse belief missing or version-stale: exactly the deliveries
  that can mutate a receiver's table) and marks their senders suspect;
  every other alive sender's deliveries are pure freshness advances, which
  a single bulk kernel applies at the end of the exchange.  Reads during
  the exchange see position-filtered values (``now`` iff the subject
  already took its turn), so mid-round snapshots match the object engine
  exactly.  The detection phase becomes one vectorised timeout scan that
  falls back to the shared per-node path only for flagged owners.

Equivalence is pinned by the seeded goldens in ``tests/can/hb_golden.py``
(both engines must produce byte-identical accounting and traces) and by a
hypothesis property test driving random churn through both engines.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs.profiling import NULL_PROFILER
from .heartbeat import (
    HeartbeatProtocol,
    HeartbeatScheme,
    ProtocolConfig,
    ProtocolNode,
)
from .messages import MessageType
from .neighbor import _NEG_INF, BeliefRecord, NeighborTable, TableSnapshot
from .overlay import CanOverlay

__all__ = [
    "EdgeStore",
    "ArrayNeighborTable",
    "ArrayHeartbeatProtocol",
    "build_protocol",
    "ENGINES",
]

#: valid values of the ``engine`` config flag
ENGINES = ("object", "array")

#: sentinel distinguishing "not resolved yet" from "resolved to undeliverable"
_MISS = object()

_POS_MAX = np.iinfo(np.int64).max


def _grown(arr: np.ndarray, new_cap: int, fill) -> np.ndarray:
    out = np.full(new_cap, fill, dtype=arr.dtype)
    out[: arr.shape[0]] = arr
    return out


class EdgeStore:
    """Shared slot arrays for every believed-table entry of one protocol."""

    def __init__(self, slot_capacity: int = 1024, row_capacity: int = 256):
        # -- per-edge slots (owner believes subject) -------------------------
        self.n_slots = 0  # high-water mark; freed slots are recycled
        self._slot_cap = slot_capacity
        self.eh = np.full(slot_capacity, _NEG_INF, dtype=np.float64)
        self.owner_row = np.zeros(slot_capacity, dtype=np.int32)
        self.subj_row = np.full(slot_capacity, -1, dtype=np.int32)
        self.rev = np.full(slot_capacity, -1, dtype=np.int32)
        self.edge_version = np.zeros(slot_capacity, dtype=np.int64)
        self.active = np.zeros(slot_capacity, dtype=bool)
        self.free_slots: List[int] = []
        # -- per-node rows (allocated monotonically, never reused) -----------
        self.n_rows = 0
        self._row_cap = row_capacity
        self.alive = np.zeros(row_capacity, dtype=bool)
        self.own_version = np.zeros(row_capacity, dtype=np.int64)
        self.epoch_of_row = np.zeros(row_capacity, dtype=np.int64)
        self.row_of: Dict[int, int] = {}
        self.node_of_row: List[int] = []
        self.tables_by_row: List[Optional["ArrayNeighborTable"]] = []
        # -- round-local exchange state --------------------------------------
        #: slots whose freshness advances to ``round_now`` at exchange end
        self.adv_mask: Optional[np.ndarray] = None
        #: per-row position in this round's sender order
        self.pos_of_row: Optional[np.ndarray] = None
        #: per-slot sender position after which the slot reads as ``now``
        #: (``_POS_MAX`` for slots outside the bulk advance); sized to the
        #: full slot capacity so mid-round gathers never go out of range
        self.avail_pos: Optional[np.ndarray] = None
        #: position of the sender currently being processed
        self.cur_pos: int = -1
        self.round_now: float = 0.0
        #: bumped whenever a bulk write lands (snapshot caches key off it)
        self.heard_gen: int = 0
        #: bumped on every write to a prescan-mask input (slot allocation,
        #: edge/own version, liveness); the exchange kernel reuses its
        #: whole prescan across rounds while this stands still
        self.struct_gen: int = 0
        #: rows whose tables mutated since the current exchange began —
        #: senders re-check this instead of rescanning epoch arrays
        self.mut_rows: set = set()

    # -- rows -----------------------------------------------------------------
    def alloc_row(self, node_id: int) -> int:
        row = self.n_rows
        if row >= self._row_cap:
            new_cap = self._row_cap * 2
            self.alive = _grown(self.alive, new_cap, False)
            self.own_version = _grown(self.own_version, new_cap, 0)
            self.epoch_of_row = _grown(self.epoch_of_row, new_cap, 0)
            self._row_cap = new_cap
        self.n_rows = row + 1
        self.alive[row] = True
        self.own_version[row] = 0
        self.epoch_of_row[row] = 0
        self.row_of[node_id] = row
        self.node_of_row.append(node_id)
        self.tables_by_row.append(None)
        self.struct_gen += 1
        return row

    def table_for(self, node_id: int) -> Optional["ArrayNeighborTable"]:
        row = self.row_of.get(node_id)
        if row is None:
            return None
        return self.tables_by_row[row]

    # -- slots ----------------------------------------------------------------
    def alloc_slot(self, owner_row: int, subject_id: int) -> int:
        free = self.free_slots
        if free:
            s = free.pop()
        else:
            s = self.n_slots
            if s >= self._slot_cap:
                new_cap = self._slot_cap * 2
                self.eh = _grown(self.eh, new_cap, _NEG_INF)
                self.owner_row = _grown(self.owner_row, new_cap, 0)
                self.subj_row = _grown(self.subj_row, new_cap, -1)
                self.rev = _grown(self.rev, new_cap, -1)
                self.edge_version = _grown(self.edge_version, new_cap, 0)
                self.active = _grown(self.active, new_cap, False)
                if self.avail_pos is not None:
                    self.avail_pos = _grown(self.avail_pos, new_cap, _POS_MAX)
                self._slot_cap = new_cap
            self.n_slots = s + 1
        srow = self.row_of.get(subject_id, -1)
        self.owner_row[s] = owner_row
        self.subj_row[s] = srow
        self.rev[s] = -1
        self.edge_version[s] = 0
        self.eh[s] = _NEG_INF
        self.active[s] = True
        self.struct_gen += 1
        self.mut_rows.add(owner_row)
        return s

    def free_slot(self, s: int) -> None:
        r = self.rev[s]
        if r >= 0:
            self.rev[r] = -1
            self.rev[s] = -1
        self.active[s] = False
        self.eh[s] = _NEG_INF
        # a slot freed mid-exchange must not receive the end-of-round bulk
        # write (or read as advanced) if it gets reused for a different edge
        mask = self.adv_mask
        if mask is not None and s < mask.shape[0]:
            mask[s] = False
        if self.avail_pos is not None:
            self.avail_pos[s] = _POS_MAX
        self.free_slots.append(s)
        self.struct_gen += 1
        self.mut_rows.add(int(self.owner_row[s]))

    # -- exchange round state -------------------------------------------------
    def begin_exchange(
        self,
        now: float,
        adv_mask: np.ndarray,
        pos_of_row: np.ndarray,
        avail_pos: np.ndarray,
    ) -> None:
        self.round_now = now
        self.adv_mask = adv_mask
        self.pos_of_row = pos_of_row
        self.avail_pos = avail_pos
        self.cur_pos = -1
        self.mut_rows.clear()

    def end_exchange(self) -> None:
        mask = self.adv_mask
        if mask is not None:
            # all evidence is <= sim time, so a plain assign is the max
            self.eh[: mask.shape[0]][mask] = self.round_now
        self.adv_mask = None
        self.pos_of_row = None
        self.avail_pos = None
        self.cur_pos = -1
        self.heard_gen += 1

    def heard_value(self, s: int) -> float:
        """Freshness of a slot as the object engine would see it *right now*.

        During the exchange, a slot flagged for the bulk advance reads as
        ``now`` once its subject's turn has passed (the object engine would
        have written it at that turn); otherwise the raw array value.
        """
        avail = self.avail_pos
        if avail is not None and avail[s] < self.cur_pos:
            return self.round_now
        return self.eh[s]


class _LazyHeard(Mapping):
    """Snapshot ``heard`` dict materialised on first read.

    Stored-table snapshots are taken on every full-table delivery but read
    only on the rare absorb (take-over, gap reply), so the per-snapshot
    cost must be the bare freeze: two array gathers.  The keys come from
    the snapshot's record dict, which copy-on-write already froze in
    matching insertion order.
    """

    __slots__ = ("_records", "_raw", "_avail", "_cur", "_now", "_d")

    def __init__(self, records, raw, avail, cur, now):
        self._records = records
        self._raw = raw
        self._avail = avail
        self._cur = cur
        self._now = now
        self._d: Optional[Dict[int, float]] = None

    def _dict(self) -> Dict[int, float]:
        d = self._d
        if d is None:
            vals = self._raw
            if self._avail is not None:
                vals = np.where(self._avail < self._cur, self._now, vals)
            d = self._d = dict(zip(self._records, vals.tolist()))
        return d

    def __getitem__(self, key):
        return self._dict()[key]

    def __iter__(self):
        return iter(self._records)

    def __len__(self):
        return len(self._records)

    def __contains__(self, key):
        return key in self._records

    def get(self, key, default=None):
        return self._dict().get(key, default)

    def __eq__(self, other):
        if isinstance(other, _LazyHeard):
            other = other._dict()
        return self._dict() == other

    __hash__ = None


class ArrayNeighborTable(NeighborTable):
    """A believed table whose freshness lives in :class:`EdgeStore` arrays.

    Structural state (records, epochs, COW snapshots of the record dict)
    reuses the parent; every last-heard access goes to the store.  The
    parent's ``_last_heard`` dict stays empty.
    """

    def __init__(
        self,
        freshness_ttl: float,
        store: EdgeStore,
        node_id: int,
        row: int,
    ):
        super().__init__(freshness_ttl)
        self._store = store
        self._node_id = node_id
        self._row = row
        #: subject id -> slot, in insertion order (mirrors ``_records``)
        self._slots: Dict[int, int] = {}
        #: bumped on any per-slot freshness write or slot change here
        self._heard_gen = 0
        self._snap_key: Optional[Tuple] = None
        #: cached ``np.fromiter(_slots.values())``; None after slot changes
        self._slots_vec: Optional[np.ndarray] = None

    # -- freshness ------------------------------------------------------------
    def advance_freshness(self, node_id: int, evidence: Optional[float]) -> None:
        if evidence is None:
            return
        s = self._slots.get(node_id)
        if s is None:
            return
        store = self._store
        if evidence > store.eh[s]:
            store.eh[s] = evidence
            self._heard_gen += 1

    def heard_from(self, record: BeliefRecord, now: float) -> bool:
        current = self._records.get(record.node_id)
        if current is None or record.version > current.version:
            return False
        s = self._slots[record.node_id]
        store = self._store
        if now > store.eh[s]:
            store.eh[s] = now
            self._heard_gen += 1
        return True

    def touch(self, node_id: int, now: float) -> None:
        s = self._slots.get(node_id)
        if s is None:
            return
        store = self._store
        if now > store.eh[s]:
            store.eh[s] = now
            self._heard_gen += 1

    # -- updates --------------------------------------------------------------
    def upsert(
        self,
        record: BeliefRecord,
        now: float,
        heard: bool = False,
        heard_at: Optional[float] = None,
    ) -> bool:
        evidence = now if heard else (heard_at if heard_at is not None else now)
        nid = record.node_id
        current = self._records.get(nid)
        store = self._store
        if current is None:
            if not heard and now - evidence > self.freshness_ttl:
                return False  # too stale to (re-)introduce
            self._own_records()
            self._records[nid] = record
            s = store.alloc_slot(self._row, nid)
            self._slots[nid] = s
            partner = store.table_for(nid)
            if partner is not None:
                ps = partner._slots.get(self._node_id)
                if ps is not None:
                    store.rev[s] = ps
                    store.rev[ps] = s
            store.eh[s] = evidence
            store.edge_version[s] = record.version
            self._heard_gen += 1
            self._slots_vec = None
            self._total_zones += max(len(record.zones), 1)
            self.epoch += 1
            store.epoch_of_row[self._row] = self.epoch
            self._record_seq[nid] = self.epoch
            return True
        s = self._slots[nid]
        if evidence > store.eh[s]:
            store.eh[s] = evidence
            self._heard_gen += 1
        if current.version > record.version or current == record:
            return False
        self._own_records()
        self._records[nid] = record
        store.edge_version[s] = record.version
        store.struct_gen += 1
        store.mut_rows.add(self._row)
        self._total_zones += max(len(record.zones), 1) - max(
            len(current.zones), 1
        )
        self.epoch += 1
        store.epoch_of_row[self._row] = self.epoch
        self._record_seq[nid] = self.epoch
        return True

    def remove(self, node_id: int, now: Optional[float] = None) -> bool:
        record = self._records.get(node_id)
        if record is None:
            return False
        self._own_records()
        del self._records[node_id]
        if now is not None:
            self._recent_removals[node_id] = (record.zones, now)
        store = self._store
        store.free_slot(self._slots.pop(node_id))
        self._heard_gen += 1
        self._slots_vec = None
        self._record_seq.pop(node_id, None)
        self._total_zones -= max(len(record.zones), 1)
        self.epoch += 1
        self.removals_epoch += 1
        store.epoch_of_row[self._row] = self.epoch
        return True

    def release(self) -> None:
        """Free every slot (the owning node left the protocol)."""
        store = self._store
        for s in self._slots.values():
            store.free_slot(s)
        self._slots.clear()
        self._heard_gen += 1
        self._slots_vec = None

    # -- reads ----------------------------------------------------------------
    def records_since(self, epoch: int) -> List[Tuple[BeliefRecord, float]]:
        store = self._store
        slots = self._slots
        records = self._records
        if store.adv_mask is not None:
            hv = store.heard_value
            return [
                (records[nid], hv(slots[nid]))
                for nid, seq in self._record_seq.items()
                if seq > epoch
            ]
        eh = store.eh
        return [
            (records[nid], eh[slots[nid]])
            for nid, seq in self._record_seq.items()
            if seq > epoch
        ]

    def last_heard(self, node_id: int) -> float:
        s = self._slots.get(node_id)
        if s is None:
            return _NEG_INF
        return float(self._store.heard_value(s))

    def stale_ids(self, now: float, timeout: float) -> List[int]:
        eh = self._store.eh
        return [
            nid for nid, s in self._slots.items() if now - eh[s] > timeout
        ]

    def snapshot(self) -> TableSnapshot:
        store = self._store
        key = (
            self.epoch,
            self._heard_gen,
            store.heard_gen,
            store.cur_pos if store.adv_mask is not None else -1,
        )
        snap = self._snap_cache
        if snap is not None and self._snap_key == key:
            return snap
        slots = self._slots
        vec = self._slots_vec
        if vec is None:
            vec = self._slots_vec = np.fromiter(
                slots.values(), dtype=np.int64, count=len(slots)
            )
        if not len(slots):
            heard = {}
        else:
            # freeze the two mutable inputs now (eh advances in later
            # rounds; avail_pos flips on mid-round slot frees) and defer
            # the heard_value filter + dict build to first read.  avail_pos
            # is _POS_MAX outside the bulk advance and sized to capacity,
            # so the gather stays in bounds for mid-round slots.
            avail = store.avail_pos
            heard = _LazyHeard(
                self._records,
                store.eh[vec],
                None if avail is None else avail[vec],
                store.cur_pos,
                store.round_now,
            )
        snap = TableSnapshot(self._records, heard, self._total_zones)
        # the record dict is shared with the snapshot (COW as the parent);
        # the heard mapping is freshly frozen, so never shared
        self._records_shared = True
        self._snap_cache = snap
        self._snap_key = key
        return snap


class ArrayHeartbeatProtocol(HeartbeatProtocol):
    """The heartbeat protocol with batched per-round kernels.

    Behaviourally identical to :class:`HeartbeatProtocol` (the goldens pin
    byte-identical seeded accounting); only the round's hot phases run as
    array kernels.  A non-identity network channel (``set_network`` /
    ``set_message_loss``) falls back to the inherited per-delivery
    exchange, which runs exactly on array-backed tables via the
    :class:`ArrayNeighborTable` interface.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.store = EdgeStore()
        #: node id -> (table epoch, sorted take-over full_ids); valid for
        #: one topology version (the take-over map's own cache key)
        self._fid_cache: Dict[int, Tuple[int, List[int]]] = {}
        self._fid_cache_tv: int = -1
        #: rows aligned with the cached ``_sorted_node_ids()`` list; a
        #: node's row never changes while it lives, so the gather is valid
        #: for exactly as long as the order list object itself
        self._order_rows: Optional[np.ndarray] = None
        self._order_rows_for: Optional[List[int]] = None
        #: (struct_gen, order, pos, adv, avail, suspect_l, alive_l)
        self._prescan_cache: Optional[Tuple] = None

    # -- node lifecycle -------------------------------------------------------
    def _make_node(self, node_id: int) -> ProtocolNode:
        store = self.store
        row = store.alloc_row(node_id)
        table = ArrayNeighborTable(
            self.config.failure_timeout, store, node_id, row
        )
        store.tables_by_row[row] = table
        node = ProtocolNode(
            node_id, self.config.failure_timeout, self._gap_dirty_ids,
            table=table,
        )

        # resolve the array through the store on every call: alloc_row
        # reallocates own_version when the rows grow, and a closure holding
        # the old array would silently write to abandoned storage
        def sink(version: int, _store=store, _row=row) -> None:
            _store.own_version[_row] = version
            _store.struct_gen += 1
            _store.mut_rows.add(_row)

        node._version_sink = sink
        self.nodes[node_id] = node
        self._nodes_order = None
        return node

    def _drop_node(self, node_id: int) -> None:
        store = self.store
        table = self.nodes[node_id].table
        table.release()
        row = store.row_of.pop(node_id)
        store.alive[row] = False
        store.struct_gen += 1
        store.tables_by_row[row] = None
        super()._drop_node(node_id)

    def fail(self, node_id: int, now: float) -> None:
        super().fail(node_id, now)
        store = self.store
        store.alive[store.row_of[node_id]] = False
        store.struct_gen += 1

    # -- the exchange kernel --------------------------------------------------
    def _exchange_heartbeats(self, now: float) -> None:
        if not self.net.is_identity:
            # per-delivery channel verdicts (loss draws, partition/flap
            # checks, latency): the inherited object path runs exactly on
            # array-backed tables, so both engines share one RNG stream
            return super()._exchange_heartbeats(now)
        store = self.store
        prof = self.profiler if self.profiler is not None else NULL_PROFILER
        vanilla = self.config.scheme is HeartbeatScheme.VANILLA
        takeovers = {} if vanilla else self._takeover_targets_map()
        tv = self.overlay.topology_version
        if self._fid_cache_tv != tv:
            self._fid_cache.clear()
            self._fid_cache_tv = tv
        fid_cache = self._fid_cache
        order = self._sorted_node_ids()
        with prof.scope("hb.exchange.prescan"):
            # the masks are pure functions of the store's structural state
            # and the sender order, so a settled CAN (no joins, versions,
            # suspects, or slot churn since last round) reuses last round's
            # prescan wholesale — only freshness moved, and freshness is
            # not a mask input
            cache = self._prescan_cache
            if (
                cache is not None
                and cache[0] == store.struct_gen
                and cache[1] is order
            ):
                _, _, pos, adv, avail, suspect_l, alive_l = cache
            else:
                n = store.n_slots
                nrows = store.n_rows
                pos = np.full(nrows, _POS_MAX, dtype=np.int64)
                if self._order_rows_for is not order:
                    row_of = store.row_of
                    self._order_rows = np.fromiter(
                        (row_of[nid] for nid in order),
                        dtype=np.int64,
                        count=len(order),
                    )
                    self._order_rows_for = order
                pos[self._order_rows] = np.arange(len(order), dtype=np.int64)
                active = store.active[:n]
                owner = store.owner_row[:n]
                subj = store.subj_row[:n]
                rev = store.rev[:n]
                edge_ver = store.edge_version[:n]
                alive = store.alive[:nrows]
                own_ver = store.own_version[:nrows]
                subj_ok = subj >= 0
                subj_idx = np.where(subj_ok, subj, 0)
                live_edge = active & alive[owner] & subj_ok & alive[subj_idx]
                # X: sender-side slots whose reverse belief is missing or
                # version-stale — exactly the deliveries that can mutate the
                # receiver's table.  Their senders run the full object path.
                rev_idx = np.where(rev >= 0, rev, 0)
                x_mask = live_edge & (
                    (rev < 0) | (edge_ver[rev_idx] < own_ver[owner])
                )
                suspect = np.zeros(nrows, dtype=bool)
                if x_mask.any():
                    suspect[owner[x_mask]] = True
                # every other delivery is a pure freshness advance: mutual,
                # version-current edges between live endpoints whose
                # subject's sends need no structural handling
                adv = (
                    live_edge
                    & (rev >= 0)
                    & ~suspect[subj_idx]
                    & (edge_ver == own_ver[subj_idx])
                )
                avail = np.full(store.eh.shape[0], _POS_MAX, dtype=np.int64)
                avail[:n] = np.where(adv, pos[subj_idx], _POS_MAX)
                # plain lists: the senders loop reads these once per sender,
                # where a numpy scalar index costs several times a list one
                suspect_l = suspect.tolist()
                alive_l = alive.tolist()
                self._prescan_cache = (
                    store.struct_gen, order, pos, adv, avail,
                    suspect_l, alive_l,
                )
            store.begin_exchange(now, adv, pos, avail)
        deliverable: Dict[int, Optional[ProtocolNode]] = {}
        tracer = self.tracer
        miss = _MISS
        full_count = full_bytes = comp_count = comp_bytes = 0
        with prof.scope("hb.exchange.senders"):
            nodes = self.nodes
            mut_rows = store.mut_rows
            for i, node_id in enumerate(order):
                sender = nodes[node_id]
                table = sender.table
                row = table._row
                # the store's alive flags mirror overlay liveness for every
                # protocol member (the kernels above already rely on it)
                if not alive_l[row]:
                    continue  # ghosts are silent
                if not table._records:
                    continue
                store.cur_pos = i
                if suspect_l[row] or row in mut_rows:
                    # pre-round exceptional edges, or mutated mid-round by
                    # an earlier sender's merge: full object path
                    self._exchange_one_sender(
                        sender, takeovers, vanilla, now, deliverable, None
                    )
                    continue
                own = sender.own_record(self.overlay)
                # inlined _heartbeat_sizes memo hit (the overwhelming case)
                wc = sender._wire_cache
                if wc is not None and wc[0] == (table.epoch, own.zone_count):
                    full_size, compact_size = wc[1], wc[2]
                else:
                    full_size, compact_size = self._heartbeat_sizes(
                        sender, own
                    )
                if vanilla:
                    full_ids = table.sorted_ids()
                    n_full = len(full_ids)
                elif takeovers.get(node_id):
                    cached = fid_cache.get(node_id)
                    if cached is not None and cached[0] == table.epoch:
                        full_ids = cached[1]
                    else:
                        full_ids = sorted(
                            t
                            for t in takeovers[node_id]
                            if t in table._records
                        )
                        fid_cache[node_id] = (table.epoch, full_ids)
                    n_full = len(full_ids)
                else:
                    full_ids = ()
                    n_full = 0
                n_comp = len(table._records) - n_full
                if tracer is None:
                    full_count += n_full
                    full_bytes += full_size * n_full
                    comp_count += n_comp
                    comp_bytes += compact_size * n_comp
                else:
                    self._record(
                        now, MessageType.HEARTBEAT_FULL, full_size, n_full
                    )
                    self._record(
                        now, MessageType.HEARTBEAT, compact_size, n_comp
                    )
                # a clean sender's targets all hold its record at the
                # current version (anything else is an X edge), so direct
                # freshness is covered by the bulk advance; only the
                # full-table merges remain.  The dominant case — the target
                # already processed this exact table state — is inlined:
                # nothing can change mid-loop (merges only mutate the
                # receiver), so one snapshot serves every skip.
                snap = None
                epoch = table.epoch
                for target_id in full_ids:
                    receiver = deliverable.get(target_id, miss)
                    if receiver is miss:
                        receiver = self._deliverable(target_id)
                        deliverable[target_id] = receiver
                    if receiver is None:
                        continue
                    last = receiver.processed_epoch.get(node_id)
                    if (
                        last is not None
                        and last[0] == epoch
                        and last[1] == receiver.own_version
                        and last[2] == receiver.table.removals_epoch
                    ):
                        if snap is None:
                            snap = table.snapshot()
                        receiver.stored_tables[node_id] = snap
                        continue
                    self._merge_full_table(receiver, sender, now)
            if tracer is None:
                self.stats.record_bulk(
                    MessageType.HEARTBEAT_FULL, full_bytes, full_count
                )
                self.stats.record_bulk(
                    MessageType.HEARTBEAT, comp_bytes, comp_count
                )
        with prof.scope("hb.exchange.advance"):
            store.end_exchange()

    # -- the detection kernel -------------------------------------------------
    def _detect_failures(self, now: float) -> None:
        store = self.store
        prof = self.profiler if self.profiler is not None else NULL_PROFILER
        timeout = self.config.failure_timeout
        with prof.scope("hb.detect.scan"):
            n = store.n_slots
            if not n:
                return
            stale = store.active[:n] & ((now - store.eh[:n]) > timeout)
            if not stale.any():
                return
            rows = np.unique(store.owner_row[:n][stale])
            node_of_row = store.node_of_row
            flagged = sorted(node_of_row[r] for r in rows)
        overlay_alive = self.overlay.is_alive
        for node_id in flagged:
            if not overlay_alive(node_id):
                continue
            pnode = self.nodes.get(node_id)
            if pnode is not None:
                self._detect_failures_at(pnode, now, timeout)


def build_protocol(
    overlay: CanOverlay,
    config: ProtocolConfig,
    engine: str = "object",
    **kwargs,
) -> HeartbeatProtocol:
    """Construct a heartbeat protocol for the requested engine."""
    if engine == "array":
        return ArrayHeartbeatProtocol(overlay, config, **kwargs)
    if engine != "object":
        raise ValueError(f"unknown heartbeat engine {engine!r}")
    return HeartbeatProtocol(overlay, config, **kwargs)
