"""The CAN's distributed-KD-tree split structure.

Because node coordinates are pinned by real resource values, zones cannot be
re-partitioned freely: the CAN partitioning behaves like a distributed
KD-tree, and each node's *split history* — the path of splits that carved
out its zone — predetermines its take-over node (paper, Section IV-B,
Figure 3).  This module keeps that tree.

In the real system each node stores only its own history; the simulator
keeps the global tree and answers the same questions a node would answer
locally (who is my take-over node; who claims this vacated leaf).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from .geometry import Zone

__all__ = ["Leaf", "Internal", "SplitTree"]


class Leaf:
    """A leaf of the split tree: one zone with one owner."""

    __slots__ = ("leaf_id", "zone", "owner", "parent", "seq")

    def __init__(self, leaf_id: int, zone: Zone, owner: int, seq: int):
        self.leaf_id = leaf_id
        self.zone = zone
        self.owner = owner
        self.parent: Optional["Internal"] = None
        #: sequence number of the split that created this leaf (recency)
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Leaf {self.leaf_id} owner={self.owner}>"


class Internal:
    """An internal tree node: a past split of a region."""

    __slots__ = ("zone", "dim", "position", "low", "high", "parent", "seq", "max_seq")

    def __init__(
        self,
        zone: Zone,
        dim: int,
        position: float,
        low: "TreeNode",
        high: "TreeNode",
        seq: int,
    ):
        self.zone = zone
        self.dim = dim
        self.position = position
        self.low = low
        self.high = high
        self.parent: Optional["Internal"] = None
        self.seq = seq
        #: most recent split sequence anywhere in this subtree
        self.max_seq = seq


TreeNode = object  # Leaf | Internal


class SplitTree:
    """Global split tree with ownership, splits, merges, and take-over search."""

    def __init__(self, zone: Zone, owner: int):
        self._leaf_ids = itertools.count()
        self._seq = itertools.count(1)
        root = Leaf(next(self._leaf_ids), zone, owner, 0)
        self.root: TreeNode = root
        self.leaves: Dict[int, Leaf] = {root.leaf_id: root}

    # -- queries -----------------------------------------------------------------
    def locate(self, point: Tuple[float, ...]) -> Leaf:
        """Leaf whose zone contains ``point`` (closed on the outer boundary)."""
        node = self.root
        while isinstance(node, Internal):
            node = node.low if point[node.dim] < node.position else node.high
        assert isinstance(node, Leaf)
        return node

    def owner_leaves(self, owner: int) -> List[Leaf]:
        return [leaf for leaf in self.leaves.values() if leaf.owner == owner]

    def leaf_count(self) -> int:
        return len(self.leaves)

    def iter_leaves(self) -> Iterator[Leaf]:
        return iter(self.leaves.values())

    # -- mutation ----------------------------------------------------------------
    def split_leaf(
        self,
        leaf: Leaf,
        dim: int,
        position: float,
        low_owner: int,
        high_owner: int,
    ) -> Tuple[Leaf, Leaf]:
        """Replace ``leaf`` with an internal split and two child leaves."""
        if leaf.leaf_id not in self.leaves:
            raise KeyError(f"leaf {leaf.leaf_id} not in tree")
        low_zone, high_zone = leaf.zone.split(dim, position)
        seq = next(self._seq)
        low = Leaf(next(self._leaf_ids), low_zone, low_owner, seq)
        high = Leaf(next(self._leaf_ids), high_zone, high_owner, seq)
        internal = Internal(leaf.zone, dim, position, low, high, seq)
        low.parent = internal
        high.parent = internal
        self._replace(leaf, internal)
        del self.leaves[leaf.leaf_id]
        self.leaves[low.leaf_id] = low
        self.leaves[high.leaf_id] = high
        self._bump_max_seq(internal, seq)
        return low, high

    def transfer(self, leaf: Leaf, new_owner: int) -> None:
        """Hand a leaf to another owner (take-over of a vacated zone)."""
        if leaf.leaf_id not in self.leaves:
            raise KeyError(f"leaf {leaf.leaf_id} not in tree")
        leaf.owner = new_owner

    def try_merge(self, leaf: Leaf) -> Optional[Tuple[Leaf, Leaf, Leaf]]:
        """Merge ``leaf`` with its sibling when both are leaves of one owner.

        Returns ``(removed_a, removed_b, merged)`` or ``None`` when no merge
        applies.  Callers should re-invoke on the merged leaf to cascade.
        """
        parent = leaf.parent
        if parent is None:
            return None
        sibling = parent.high if parent.low is leaf else parent.low
        if not isinstance(sibling, Leaf) or sibling.owner != leaf.owner:
            return None
        merged = Leaf(
            next(self._leaf_ids), parent.zone, leaf.owner, min(leaf.seq, sibling.seq)
        )
        self._replace(parent, merged)
        del self.leaves[leaf.leaf_id]
        del self.leaves[sibling.leaf_id]
        self.leaves[merged.leaf_id] = merged
        return leaf, sibling, merged

    # -- take-over ----------------------------------------------------------------
    def takeover_leaf(
        self, leaf: Leaf, excluded_owners: Set[int]
    ) -> Optional[Leaf]:
        """The leaf whose owner is designated to claim ``leaf`` when vacated.

        The designated claimant is found in the sibling subtree of the
        vacated leaf's most recent split, descending into the most recently
        split region (the "deepest" partner, mirroring the original CAN's
        depth-first hand-off).  Owners in ``excluded_owners`` (e.g. also
        failed) are skipped; when the whole sibling subtree is excluded the
        search climbs to the next enclosing split.
        """
        current: TreeNode = leaf
        while True:
            parent = getattr(current, "parent")
            if parent is None:
                return None  # lone node in the system
            sibling = parent.high if parent.low is current else parent.low
            for candidate in self._descend(sibling):
                if candidate.owner not in excluded_owners and candidate is not leaf:
                    return candidate
            current = parent

    def _descend(self, node: TreeNode) -> Iterator[Leaf]:
        """Yield leaves of a subtree, preferring the most recent splits."""
        if isinstance(node, Leaf):
            yield node
            return
        assert isinstance(node, Internal)
        children = [node.low, node.high]
        children.sort(key=self._recency, reverse=True)
        for child in children:
            yield from self._descend(child)

    @staticmethod
    def _recency(node: TreeNode) -> int:
        if isinstance(node, Internal):
            return node.max_seq
        return node.seq  # type: ignore[union-attr]

    # -- invariants (used by tests) --------------------------------------------------
    def check_partition(self) -> None:
        """Assert leaves tile the root zone exactly (volume bookkeeping)."""
        root_zone = (
            self.root.zone if isinstance(self.root, (Leaf, Internal)) else None
        )
        assert root_zone is not None
        total = sum(leaf.zone.volume() for leaf in self.leaves.values())
        if abs(total - root_zone.volume()) > 1e-9 * max(1.0, root_zone.volume()):
            raise AssertionError(
                f"leaves volume {total} != root volume {root_zone.volume()}"
            )

    # -- plumbing ---------------------------------------------------------------------
    def _replace(self, old: TreeNode, new: TreeNode) -> None:
        parent = getattr(old, "parent")
        new.parent = parent  # type: ignore[attr-defined]
        if parent is None:
            self.root = new
        elif parent.low is old:
            parent.low = new
        else:
            parent.high = new

    def _bump_max_seq(self, node: Optional[Internal], seq: int) -> None:
        while node is not None:
            if node.max_seq >= seq:
                break
            node.max_seq = seq
            node = node.parent
