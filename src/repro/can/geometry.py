"""Hyper-rectangular zone geometry for the CAN.

A zone is an axis-aligned box ``[lo, hi)`` in d-dimensional space.  Zones
owned by live nodes partition the whole space: they never overlap and their
union covers everything.  Two zones are *neighbors* when they share a
(d-1)-dimensional face — they touch along exactly one axis and overlap with
positive measure along every other axis (corner contact does not count,
matching the original CAN definition).

Unlike the original CAN, this space is **not** a torus: coordinates encode
resource magnitudes, so "wrapping around" from the largest machines to the
smallest would be meaningless.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

__all__ = ["Zone"]

_EPS = 1e-12


class Zone:
    """Immutable axis-aligned box ``[lo, hi)``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: Sequence[float], hi: Sequence[float]):
        lo = tuple(float(x) for x in lo)
        hi = tuple(float(x) for x in hi)
        if len(lo) != len(hi):
            raise ValueError("lo and hi must have the same dimensionality")
        if not lo:
            raise ValueError("zone must have at least one dimension")
        for d, (a, b) in enumerate(zip(lo, hi)):
            if not a < b:
                raise ValueError(f"empty extent along dim {d}: [{a}, {b})")
        self.lo = lo
        self.hi = hi

    # -- basic properties ---------------------------------------------------------
    @property
    def dims(self) -> int:
        return len(self.lo)

    def extent(self, dim: int) -> float:
        return self.hi[dim] - self.lo[dim]

    def volume(self) -> float:
        v = 1.0
        for a, b in zip(self.lo, self.hi):
            v *= b - a
        return v

    def center(self) -> Tuple[float, ...]:
        return tuple((a + b) / 2.0 for a, b in zip(self.lo, self.hi))

    # -- point / zone relations -----------------------------------------------------
    def contains(self, point: Sequence[float]) -> bool:
        """Half-open containment: ``lo <= p < hi`` along every axis."""
        if len(point) != self.dims:
            raise ValueError("point dimensionality mismatch")
        return all(a <= p < b for p, a, b in zip(point, self.lo, self.hi))

    def contains_closed(self, point: Sequence[float]) -> bool:
        """Closed containment, for points on the outer boundary of the space."""
        if len(point) != self.dims:
            raise ValueError("point dimensionality mismatch")
        return all(a <= p <= b for p, a, b in zip(point, self.lo, self.hi))

    def overlaps(self, other: "Zone") -> bool:
        """Positive-measure intersection along every axis."""
        self._check(other)
        return all(
            min(h1, h2) - max(l1, l2) > _EPS
            for l1, h1, l2, h2 in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def abuts(self, other: "Zone") -> bool:
        """Do the zones share a (d-1)-dimensional face?

        Exactly one axis where they touch end-to-start; positive overlap on
        all the others.
        """
        self._check(other)
        touching = 0
        for l1, h1, l2, h2 in zip(self.lo, self.hi, other.lo, other.hi):
            gap_lo = abs(h1 - l2)
            gap_hi = abs(h2 - l1)
            if gap_lo <= _EPS or gap_hi <= _EPS:
                touching += 1
                if touching > 1:
                    return False
            elif min(h1, h2) - max(l1, l2) > _EPS:
                continue  # positive overlap on this axis
            else:
                return False  # separated along this axis
        return touching == 1

    def touch_dimension(self, other: "Zone") -> int:
        """Axis along which two abutting zones touch.

        Verifies abutment and finds the touch axis in one pass over the
        axes (the same classification :meth:`abuts` performs, without a
        second rescan).  Raises ``ValueError`` when the zones do not abut.
        """
        self._check(other)
        touch_dim = -1
        for d, (l1, h1, l2, h2) in enumerate(
            zip(self.lo, self.hi, other.lo, other.hi)
        ):
            if abs(h1 - l2) <= _EPS or abs(h2 - l1) <= _EPS:
                if touch_dim >= 0:
                    raise ValueError("zones do not abut")
                touch_dim = d
            elif min(h1, h2) - max(l1, l2) > _EPS:
                continue  # positive overlap on this axis
            else:
                raise ValueError("zones do not abut")
        if touch_dim < 0:
            raise ValueError("zones do not abut")
        return touch_dim

    def touch(self, other: "Zone") -> Tuple[int, int]:
        """(dimension, direction) of the shared face of two ABUTTING zones.

        Fast path used by adjacency caches: assumes the zones abut (as
        guaranteed by the overlay's adjacency graph) and therefore skips
        the full abutment re-verification of :meth:`touch_dimension`.
        Direction is +1 when ``other`` lies on this zone's high side.
        """
        for d, (l1, h1, l2, h2) in enumerate(
            zip(self.lo, self.hi, other.lo, other.hi)
        ):
            if abs(h1 - l2) <= _EPS:
                return d, +1
            if abs(h2 - l1) <= _EPS:
                return d, -1
        raise ValueError("zones do not touch along any axis")

    def direction_of(self, other: "Zone", dim: int) -> int:
        """+1 when ``other`` lies on the high side of this zone along ``dim``.

        Only meaningful for abutting zones along their touch dimension.
        """
        if abs(self.hi[dim] - other.lo[dim]) <= _EPS:
            return +1
        if abs(other.hi[dim] - self.lo[dim]) <= _EPS:
            return -1
        raise ValueError(f"zones do not touch along dim {dim}")

    # -- surgery ---------------------------------------------------------------------
    def split(self, dim: int, at: float) -> Tuple["Zone", "Zone"]:
        """Cut into (low, high) halves along ``dim`` at position ``at``."""
        if not 0 <= dim < self.dims:
            raise ValueError(f"dim {dim} out of range")
        if not self.lo[dim] < at < self.hi[dim]:
            raise ValueError(
                f"split position {at} outside ({self.lo[dim]}, {self.hi[dim]})"
            )
        lo_hi = list(self.hi)
        lo_hi[dim] = at
        hi_lo = list(self.lo)
        hi_lo[dim] = at
        return Zone(self.lo, lo_hi), Zone(hi_lo, self.hi)

    def merge(self, other: "Zone") -> "Zone":
        """Union of two zones forming a box (they must share a full face)."""
        self._check(other)
        diff_dim = None
        for d in range(self.dims):
            same = (
                abs(self.lo[d] - other.lo[d]) <= _EPS
                and abs(self.hi[d] - other.hi[d]) <= _EPS
            )
            if not same:
                if diff_dim is not None:
                    raise ValueError("zones differ along more than one axis")
                diff_dim = d
        if diff_dim is None:
            raise ValueError("zones are identical")
        d = diff_dim
        if abs(self.hi[d] - other.lo[d]) <= _EPS:
            lo, hi = list(self.lo), list(other.hi)
        elif abs(other.hi[d] - self.lo[d]) <= _EPS:
            lo, hi = list(other.lo), list(self.hi)
        else:
            raise ValueError("zones are not adjacent along the differing axis")
        return Zone(lo, hi)

    # -- plumbing --------------------------------------------------------------------
    def _check(self, other: "Zone") -> None:
        if self.dims != other.dims:
            raise ValueError("zone dimensionality mismatch")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Zone):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        spans = ", ".join(
            f"[{a:.3g},{b:.3g})" for a, b in zip(self.lo, self.hi)
        )
        return f"Zone({spans})"


def any_abuts(zones_a: Iterable[Zone], zones_b: Iterable[Zone]) -> bool:
    """True when some zone of A shares a face with some zone of B."""
    zones_b = list(zones_b)
    return any(za.abuts(zb) for za in zones_a for zb in zones_b)
