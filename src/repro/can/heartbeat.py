"""The CAN maintenance protocol: heartbeats, failures, take-overs, repair.

This engine simulates the *information* plane of the CAN.  Ground truth
(zones, ownership) lives in :class:`~repro.can.overlay.CanOverlay`; each
node's believed neighbor table lives in a :class:`ProtocolNode` and changes
only when messages deliver.  Three heartbeat schemes are implemented
(paper, Section IV):

* **vanilla** — every heartbeat carries the sender's full neighbor table;
  receivers can repair broken links from third-party records (Figure 2) at
  O(d²) volume per node.
* **compact** — full tables go only to the sender's predetermined take-over
  node(s) (from the zone split history); everyone else gets the sender's own
  record plus O(d) aggregated load info.  Volume drops to O(d) but mutual
  broken links can no longer self-heal.
* **adaptive** — compact, plus an on-demand *full-update request* broadcast
  to all neighbors when a node detects a broken link (a coverage gap around
  its zone); neighbors answer with their full tables.

Message *timing* is simplified to synchronous rounds every ``period``
seconds (all nodes share the heartbeat period), which is the granularity the
paper's experiments use; joins/leaves/failures occur at arbitrary simulated
times between rounds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..net import IDENTITY, NetworkModel, NetworkSpec
from ..obs.profiling import NULL_PROFILER
from ..sim.monitor import TimeSeries
from .coverage import has_gap
from .messages import MessageType, SizeModel
from .neighbor import _NEG_INF, BeliefRecord, NeighborTable, TableSnapshot
from .overlay import CanOverlay, OverlayError, Transfer
from .stats import MessageStats

__all__ = ["HeartbeatScheme", "ProtocolConfig", "HeartbeatProtocol", "ProtocolNode"]

#: sentinel distinguishing "not resolved yet" from "resolved to undeliverable"
_MISS = object()


class HeartbeatScheme(enum.Enum):
    VANILLA = "vanilla"
    COMPACT = "compact"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables of the maintenance protocol."""

    scheme: HeartbeatScheme = HeartbeatScheme.VANILLA
    #: heartbeat period in simulated seconds
    period: float = 60.0
    #: a neighbor is declared failed after this many silent periods
    failure_timeout_periods: float = 2.5
    #: adaptive: how many consecutive rounds a node keeps re-requesting
    #: full updates while its detected gap persists before giving up
    gap_retry_rounds: int = 2
    #: adaptive: also run the coverage check every k rounds even without a
    #: local table change (0 disables the periodic check)
    periodic_gap_check_every: int = 0
    #: adaptive: probability that a real coverage gap is noticed by the
    #: local coverage computation in a given round.  In high dimension a
    #: stale believed zone can spuriously cover a vacated area, hiding the
    #: gap — 1.0 models a perfect checker (see DESIGN.md)
    gap_detection_prob: float = 1.0
    #: adaptive's gap detector: "coverage" runs the real local zone-face
    #: coverage computation over believed zones (repro.can.coverage);
    #: "oracle" compares against ground truth (an idealised upper bound)
    detection: str = "coverage"
    size_model: SizeModel = field(default_factory=SizeModel)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.failure_timeout_periods < 1:
            raise ValueError("failure timeout must be at least one period")
        if self.gap_retry_rounds < 0 or self.periodic_gap_check_every < 0:
            raise ValueError("retry/periodic settings must be non-negative")
        if not 0.0 <= self.gap_detection_prob <= 1.0:
            raise ValueError("gap_detection_prob must be a probability")
        if self.detection not in ("coverage", "oracle"):
            raise ValueError(f"unknown detection mode {self.detection!r}")

    @property
    def failure_timeout(self) -> float:
        return self.period * self.failure_timeout_periods


class ProtocolNode:
    """Per-node protocol state: believed table, stored tables, gap flags."""

    __slots__ = (
        "node_id",
        "table",
        "own_version",
        "stored_tables",
        "processed_epoch",
        "_gap_dirty",
        "_gap_registry",
        "gap_attempts",
        "_record_cache",
        "_record_cache_version",
        "_non_abutting",
        "_wire_cache",
        "_gap_memo",
        "_broken_cache",
        "_version_sink",
    )

    def __init__(
        self,
        node_id: int,
        freshness_ttl: float = float("inf"),
        gap_registry: Optional[Set[int]] = None,
        table: Optional[NeighborTable] = None,
    ):
        self.node_id = node_id
        #: protocol-level set mirroring gap_dirty flags (see the gap_dirty
        #: property) — None for a node used outside a protocol
        self._gap_registry = gap_registry
        self.table = table if table is not None else NeighborTable(freshness_ttl)
        #: optional callable invoked with the new version on every bump;
        #: the array engine mirrors own_version into its row arrays here
        self._version_sink: Optional[Callable[[int], None]] = None
        self.own_version = 0
        #: full tables received from other nodes (vanilla: every neighbor;
        #: compact/adaptive: only nodes whose take-over target we are) —
        #: this is what makes a take-over possible after a silent failure
        self.stored_tables: Dict[int, TableSnapshot] = {}
        #: (sender table epoch, our own version, our table epoch) at the
        #: last full-table merge per sender — re-merge when any changed:
        #: our zone changes alter which records abut us, and our own table
        #: changes (e.g. a removal) alter what a merge would contribute
        self.processed_epoch: Dict[int, Tuple[int, int, int]] = {}
        self._gap_dirty = False
        self.gap_attempts = 0
        self._record_cache: Optional[BeliefRecord] = None
        self._record_cache_version = -1
        #: negative abutment memo: (node_id, version) -> our own_version at
        #: test time.  Gossip keeps re-sending the same far-away records;
        #: re-testing zone abutment for each would dominate the run time.
        self._non_abutting: Dict[Tuple[int, int], int] = {}
        #: memoized heartbeat wire sizes: ((table epoch, own zone count),
        #: full size, compact size)
        self._wire_cache: Optional[Tuple[Tuple[int, int], int, int]] = None
        #: memoized gap-detector verdict: (key, bool) — see _detects_gap
        self._gap_memo: Optional[Tuple[Tuple, bool]] = None
        #: memoized broken-link count: ((neighborhood stamp, table epoch), n)
        self._broken_cache: Optional[Tuple[Tuple[int, int], int]] = None

    @property
    def gap_dirty(self) -> bool:
        """Should the adaptive scheme re-check this node's zone coverage?

        Setting the flag keeps the owning protocol's dirty-id set in sync,
        so the per-round check visits only flagged nodes instead of
        scanning the population.
        """
        return self._gap_dirty

    @gap_dirty.setter
    def gap_dirty(self, flag: bool) -> None:
        self._gap_dirty = flag
        registry = self._gap_registry
        if registry is not None:
            if flag:
                registry.add(self.node_id)
            else:
                registry.discard(self.node_id)

    def bump_version(self) -> None:
        self.own_version += 1
        self._record_cache = None
        if self._version_sink is not None:
            self._version_sink(self.own_version)

    def own_record(self, overlay: CanOverlay) -> BeliefRecord:
        if self._record_cache is None or self._record_cache_version != self.own_version:
            self._record_cache = BeliefRecord(
                node_id=self.node_id,
                version=self.own_version,
                zones=tuple(overlay.zones_of(self.node_id)),
                coord=overlay.coordinate(self.node_id),
            )
            self._record_cache_version = self.own_version
        return self._record_cache


class HeartbeatProtocol:
    """Drives rounds of heartbeats plus the join/leave/failure protocol."""

    def __init__(
        self,
        overlay: CanOverlay,
        config: ProtocolConfig,
        rng: Optional["np.random.Generator"] = None,
        tracer: Optional[object] = None,
        profiler: Optional[object] = None,
        metrics: Optional[object] = None,
    ):
        self.overlay = overlay
        self.config = config
        self._rng = rng
        #: optional repro.obs.Tracer; None keeps every emit site to a
        #: single attribute test (the default, benchmark-grade path)
        self.tracer = tracer
        #: optional repro.obs.MetricsRegistry; when present the protocol
        #: streams crash->detection latencies into a constant-memory
        #: quantile sketch under ``hb.detection_latency``
        self.metrics = metrics
        self._detection_sketch = (
            metrics.scope("hb").quantile_sketch("detection_latency")
            if metrics is not None
            else None
        )
        #: optional repro.obs.Profiler; run_round wraps its phases in
        #: scopes (a handful of no-op context managers per round when off)
        self.profiler = profiler
        self.stats = MessageStats()
        self.nodes: Dict[int, ProtocolNode] = {}
        self.broken_links = TimeSeries("broken_links")
        self._fail_times: Dict[int, float] = {}
        self._pending_joins: List[Tuple[int, Tuple[float, ...]]] = []
        self._round = 0
        self._now = 0.0
        self._takeover_cache: Tuple[int, Dict[int, Set[int]]] = (-1, {})
        #: full-update replies in flight: (receiver id, responder record,
        #: responder table snapshot) — sent in one round, delivered with the
        #: next round's messages (one heartbeat period of latency)
        self._reply_queue: List[Tuple[int, BeliefRecord, TableSnapshot]] = []
        self.events = {"joins": 0, "leaves": 0, "failures": 0, "claims": 0}
        #: reverse index of ProtocolNode.stored_tables: sender id -> ids of
        #: nodes holding a stored copy of its table.  Lets a take-over purge
        #: the dead node's entries without sweeping the whole population.
        self._stored_in: Dict[int, Set[int]] = {}
        #: ids with gap_dirty set — the only nodes the adaptive scheme's
        #: per-round coverage check needs to visit (kept in lock-step with
        #: the per-node flags by the ProtocolNode.gap_dirty property)
        self._gap_dirty_ids: Set[int] = set()
        #: cached sorted member ids; None after any membership change
        self._nodes_order: Optional[List[int]] = None
        #: optional hook fired once per genuinely-failed node, the first
        #: time any live believer times it out (or at claim time, whichever
        #: comes first): ``fn(dead_id, now)``.  The faulty-grid layer hangs
        #: job resubmission off this, so recovery starts when the *protocol*
        #: notices a crash rather than after a modelled constant.
        self.on_failure_detected: Optional[Callable[[int, float], None]] = None
        #: failed ids already reported through on_failure_detected
        self._detected_failures: Set[int] = set()
        #: the network channel every unreliable send traverses (loss,
        #: partitions, flapping links, latency).  The IDENTITY default is
        #: bypassed entirely — no RNG draws — keeping seeded runs unchanged.
        self.net: NetworkModel = IDENTITY
        #: heartbeats in flight with super-period latency, as
        #: (arrival, kind, receiver id, sender record, snapshot|None,
        #: send time); drained by the first round at/after arrival
        self._deferred: List[
            Tuple[float, str, int, BeliefRecord, Optional[TableSnapshot], float]
        ] = []
        self._net_sketch = (
            metrics.scope("net").quantile_sketch("delivery_latency")
            if metrics is not None
            else None
        )

    def _record(
        self, now: float, mtype: MessageType, size_bytes: int, copies: int = 1
    ) -> None:
        """Account a send in MessageStats and mirror it onto the tracer.

        Emitting from the same call site that feeds the stats keeps traces
        consistent with :class:`MessageStats` by construction.
        """
        self.stats.record(mtype, size_bytes, copies)
        if self.tracer is not None and copies:
            self.tracer.emit(
                now, "msg.sent", mtype=mtype.value, bytes=size_bytes, copies=copies
            )

    # ------------------------------------------------------------------ topology --
    def _make_node(self, node_id: int) -> ProtocolNode:
        """Create per-node protocol state (the array engine overrides this)."""
        node = ProtocolNode(
            node_id, self.config.failure_timeout, self._gap_dirty_ids
        )
        self.nodes[node_id] = node
        self._nodes_order = None
        return node

    def _drop_node(self, node_id: int) -> None:
        """Discard per-node protocol state (the array engine overrides this)."""
        del self.nodes[node_id]
        self._nodes_order = None
        self._gap_dirty_ids.discard(node_id)

    def bootstrap(self, node_id: int, coord: Sequence[float], now: float = 0.0) -> None:
        """Insert the very first CAN member."""
        self.overlay.add_node(node_id, coord)
        self._make_node(node_id)

    def join(self, node_id: int, coord: Sequence[float], now: float) -> bool:
        """A node joins; returns False when deferred (target zone in limbo)."""
        coord = tuple(coord)
        try:
            result = self.overlay.add_node(node_id, coord)
        except OverlayError:
            # The containing zone belongs to a failed-but-unclaimed node;
            # retry once the take-over has happened.
            self._pending_joins.append((node_id, coord))
            if self.tracer is not None:
                self.tracer.emit(now, "can.join_deferred", node=node_id)
            return False
        self.events["joins"] += 1
        if self.tracer is not None:
            self.tracer.emit(
                now, "can.join", node=node_id, splitter=result.splitter_id
            )
        newcomer = self._make_node(node_id)
        splitter = self.nodes[result.splitter_id]
        splitter.bump_version()

        model = self.config.size_model
        dims = self.overlay.space.dims
        new_zones = self.overlay.zones_of(node_id)

        # Join reply: the splitter hands the newcomer its own record plus the
        # slice of its believed table relevant to the newcomer's zone.
        slice_records = [
            (rec, heard_at)
            for rec, heard_at in splitter.table.snapshot().pairs()
            if self._record_relevant(newcomer, rec, new_zones)
        ]
        self._record(
            now,
            MessageType.JOIN_REPLY,
            model.table_bytes(dims, [r.zone_count for r, _ in slice_records] + [1]),
        )
        for rec, heard_at in slice_records:
            newcomer.table.upsert(rec, now, heard_at=heard_at)
        newcomer.table.upsert(splitter.own_record(self.overlay), now)
        newcomer.gap_dirty = True

        # The splitter's zone shrank: drop neighbors now adjacent only to
        # the newcomer, and add the newcomer itself.
        notify_ids = splitter.table.sorted_ids()
        splitter_zones = self.overlay.zones_of(splitter.node_id)
        for rec in splitter.table.records():
            if not self._record_relevant(splitter, rec, splitter_zones):
                splitter.table.remove(rec.node_id)
        new_record = newcomer.own_record(self.overlay)
        if self._record_relevant(splitter, new_record, splitter_zones):
            splitter.table.upsert(new_record, now)
        splitter.gap_dirty = True

        # Join notify: splitter announces its new zone and the newcomer to
        # its (pre-split) believed neighbors.
        self._record(
            now, MessageType.JOIN_NOTIFY, model.notify_bytes(dims), len(notify_ids)
        )
        splitter_record = splitter.own_record(self.overlay)
        net_active = not self.net.is_identity
        for target_id in notify_ids:
            if (
                net_active
                and self._transmit(splitter.node_id, target_id, now) is None
            ):
                continue  # notify lost; heartbeats converge the neighborhood
            target = self._deliverable(target_id)
            if target is None:
                continue
            self._receive_record(target, splitter_record, now)
            self._receive_record(target, new_record, now)
        return True

    def graceful_leave(self, node_id: int, now: float) -> None:
        """Voluntary departure with explicit hand-off to take-over nodes."""
        leaver = self.nodes[node_id]
        transfers = self.overlay.graceful_leave(node_id)
        self.events["leaves"] += 1
        if self.tracer is not None:
            self.tracer.emit(now, "can.leave", node=node_id)
        model = self.config.size_model
        dims = self.overlay.space.dims
        leaver_table = leaver.table.snapshot()
        handoff_size = model.table_bytes_from_totals(
            dims, len(leaver_table), leaver_table.total_zones
        )
        for transfer in transfers:
            claimant = self.nodes[transfer.to_node]
            claimant.bump_version()
            self._record(now, MessageType.HANDOFF, handoff_size)
            self._absorb_table(claimant, leaver_table, now)
            claimant.table.remove(node_id)
            claimant.gap_dirty = True
            self._notify_takeover(claimant, node_id, transfer, leaver_table, now)
        self._drop_node(node_id)

    def fail(self, node_id: int, now: float) -> None:
        """Silent crash: no messages; neighbors find out via timeouts."""
        self.overlay.fail(node_id)
        self.events["failures"] += 1
        self._fail_times[node_id] = now
        if self.tracer is not None:
            self.tracer.emit(now, "can.fail", node=node_id)

    def adopt_overlay(self, now: float = 0.0) -> None:
        """Warm-start protocol state for an overlay built outside it.

        The grid simulations construct their CAN via
        :func:`~repro.gridsim.simulation.build_grid` (no per-join message
        accounting wanted for the bootstrap).  Adoption creates a
        :class:`ProtocolNode` for every member and seeds each believed
        table with its ground-truth neighbors, all freshly heard at
        ``now`` — the state a long-converged protocol would be in.
        """
        for node_id in sorted(self.overlay.members):
            if node_id not in self.nodes:
                self._make_node(node_id)
        for node_id, pnode in self.nodes.items():
            for nid in sorted(self.overlay.neighbor_set(node_id)):
                other = self.nodes.get(nid)
                if other is not None:
                    pnode.table.upsert(other.own_record(self.overlay), now)
        self._nodes_order = None

    def set_network(self, model: Optional[NetworkModel]) -> None:
        """Install the channel every unreliable send traverses.

        Heartbeats (full and compact), join/take-over notifies, and the
        adaptive scheme's full-update requests and replies all go through
        ``model.transmit``.  Connection-oriented handshakes stay reliable
        by design: the join reply and the graceful-leave hand-off model
        acknowledged transfers, not fire-and-forget datagrams.  ``None``
        (or the identity model) restores the ideal channel with no RNG
        draws at all.
        """
        self.net = IDENTITY if model is None else model

    def set_message_loss(
        self, rate: float, rng: Optional["np.random.Generator"]
    ) -> None:
        """Drop each unreliable delivery independently with ``rate``.

        Compatibility wrapper over :meth:`set_network`: fault injection
        for the recovery experiments, where loss starves believed tables
        of freshness evidence so detection (and the repair each scheme
        can or cannot perform) degrades differently per scheme.
        ``rate == 0`` restores the loss-free path with no RNG draws;
        ``rate == 1`` is a total blackout (every send dropped).
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be in [0, 1]")
        if rate == 0.0:
            self.net = IDENTITY
        else:
            self.net = NetworkModel(NetworkSpec(loss=rate), rng)

    def _transmit(self, src: int, dst: int, now: float) -> Optional[float]:
        """Send one message through the channel: None = dropped in flight.

        The obs wiring lives here so every send path reports identically:
        drops emit a ``net.drop`` trace event, deliveries stream their
        one-way latency into the ``net.delivery_latency`` sketch.
        """
        lat = self.net.transmit(src, dst, now)
        if lat is None:
            if self.tracer is not None:
                self.tracer.emit(now, "net.drop", src=src, dst=dst)
            return None
        if self._net_sketch is not None:
            self._net_sketch.insert(lat)
        return lat

    # ------------------------------------------------------------------ the round --
    def run_round(self, now: float) -> None:
        """One heartbeat period: exchange, detect, claim, repair, measure.

        Each phase runs under a profiler scope named for the scheme
        (``hb.round.vanilla/hb.exchange`` ...), so per-scheme heartbeat
        generation/processing cost is separable in bench profiles.
        """
        prof = self.profiler if self.profiler is not None else NULL_PROFILER
        self._round += 1
        self._now = now
        self.stats.track_population(now, len(self.overlay.alive_ids()))
        with prof.scope(f"hb.round.{self.config.scheme.value}"):
            with prof.scope("hb.retry_joins"):
                self._retry_pending_joins(now)
            with prof.scope("hb.exchange"):
                self._exchange_heartbeats(now)
            with prof.scope("hb.deliver_replies"):
                self._deliver_replies(now)
            with prof.scope("hb.detect_failures"):
                self._detect_failures(now)
            with prof.scope("hb.claim_zones"):
                self._claim_timed_out_zones(now)
            if self.config.scheme is HeartbeatScheme.ADAPTIVE:
                with prof.scope("hb.gap_checks"):
                    self._adaptive_gap_checks(now)
            with prof.scope("hb.count_broken_links"):
                broken = self.count_broken_links()
        self.broken_links.record(now, float(broken))
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "hb.round",
                round=self._round,
                population=len(self.overlay.alive_ids()),
                broken_links=broken,
            )

    # -- heartbeat exchange ---------------------------------------------------------
    def _exchange_heartbeats(self, now: float) -> None:
        vanilla = self.config.scheme is HeartbeatScheme.VANILLA
        takeovers = self._takeover_targets_map() if not vanilla else {}
        # membership and liveness are fixed for the duration of the
        # exchange, so target resolution is shared across all senders
        deliverable: Dict[int, Optional[ProtocolNode]] = {}
        miss = _MISS
        net = self.net if not self.net.is_identity else None
        for node_id in self._sorted_node_ids():
            if not self.overlay.is_alive(node_id):
                continue  # ghosts are silent
            self._exchange_one_sender(
                self.nodes[node_id],
                takeovers,
                vanilla,
                now,
                deliverable,
                net,
            )

    def _exchange_one_sender(
        self,
        sender: ProtocolNode,
        takeovers: Dict[int, Set[int]],
        vanilla: bool,
        now: float,
        deliverable: Dict[int, Optional[ProtocolNode]],
        net: Optional[NetworkModel],
    ) -> None:
        """Send one node's heartbeats for this round (account + deliver).

        Shared by both engines: the object engine calls it for every alive
        sender, the array engine only for senders whose deliveries need the
        full structural path (the rest advance in one bulk kernel).
        """
        node_id = sender.node_id
        targets = sender.table.sorted_ids()
        if not targets:
            return
        own = sender.own_record(self.overlay)
        full_size, compact_size = self._heartbeat_sizes(sender, own)
        if vanilla:
            full_targets, compact_targets = targets, ()
        else:
            tset = takeovers.get(node_id, set())
            full_targets = [t for t in targets if t in tset]
            compact_targets = [t for t in targets if t not in tset]
        self._record(
            now, MessageType.HEARTBEAT_FULL, full_size, len(full_targets)
        )
        self._record(
            now, MessageType.HEARTBEAT, compact_size, len(compact_targets)
        )
        miss = _MISS
        period = self.config.period
        for target_id in full_targets:
            if net is not None:
                lat = self._transmit(node_id, target_id, now)
                if lat is None:
                    continue  # dropped in flight (sender still paid bytes)
                if lat > period:
                    # slower than the round granularity: lands later, with
                    # the evidence it carried at send time
                    self._deferred.append(
                        (now + lat, "full", target_id, own,
                         sender.table.snapshot(), now)
                    )
                    continue
            receiver = deliverable.get(target_id, miss)
            if receiver is miss:
                receiver = self._deliverable(target_id)
                deliverable[target_id] = receiver
            if receiver is None:
                continue
            if not receiver.table.heard_from(own, now):
                self._receive_record(receiver, own, now, heard=True)
            self._merge_full_table(receiver, sender, now)
        for target_id in compact_targets:
            if net is not None:
                lat = self._transmit(node_id, target_id, now)
                if lat is None:
                    continue
                if lat > period:
                    self._deferred.append(
                        (now + lat, "compact", target_id, own, None, now)
                    )
                    continue
            receiver = deliverable.get(target_id, miss)
            if receiver is miss:
                receiver = self._deliverable(target_id)
                deliverable[target_id] = receiver
            if receiver is None:
                continue
            if not receiver.table.heard_from(own, now):
                self._receive_record(receiver, own, now, heard=True)

    def _heartbeat_sizes(self, sender: ProtocolNode, own: BeliefRecord) -> Tuple[int, int]:
        """(full, compact) heartbeat sizes, memoized per table/zone state."""
        key = (sender.table.epoch, own.zone_count)
        cached = sender._wire_cache
        if cached is not None and cached[0] == key:
            return cached[1], cached[2]
        model = self.config.size_model
        dims = self.overlay.space.dims
        full = model.heartbeat_bytes_from_totals(
            dims, own.zone_count, len(sender.table), sender.table.total_zones()
        )
        compact = model.heartbeat_bytes(dims, own.zone_count, None)
        sender._wire_cache = (key, full, compact)
        return full, compact

    def _merge_full_table(
        self, receiver: ProtocolNode, sender: ProtocolNode, now: float
    ) -> None:
        """Process a full neighbor table, skipping unchanged re-sends."""
        key = (
            sender.table.epoch,
            receiver.own_version,
            receiver.table.removals_epoch,
        )
        last = receiver.processed_epoch.get(sender.node_id)
        if last is None:
            # first table stored from this sender: index the holder so a
            # later take-over can purge it without a population sweep
            self._stored_in.setdefault(sender.node_id, set()).add(
                receiver.node_id
            )
        snap = sender.table.snapshot()
        receiver.stored_tables[sender.node_id] = snap
        if last == key:
            return
        if last is not None and last[1:] == key[1:]:
            # Only the sender's table advanced: merging the delta suffices.
            # (Local removals or zone changes force a full re-merge below —
            # an unchanged remote record may then become relevant again.)
            own_zones = self.overlay.zones_of(receiver.node_id)
            for rec, heard_at in sender.table.records_since(last[0]):
                if rec.node_id != receiver.node_id:
                    self._receive_record(
                        receiver, rec, now, heard_at=heard_at,
                        own_zones=own_zones,
                    )
        else:
            self._absorb_table(receiver, snap, now)
        receiver.processed_epoch[sender.node_id] = key

    def _absorb_table(
        self,
        receiver: ProtocolNode,
        table: TableSnapshot,
        now: float,
    ) -> None:
        """Merge third-party records that abut the receiver's zones.

        The dominant case by far is a record the receiver already believes
        at the same version — nothing structural to learn — so that branch
        of :meth:`_receive_record` is inlined here.  Binding the believed
        dict once is safe: only the record id being processed can mutate
        (and rebind) it, and every id appears at most once per snapshot.
        """
        own_zones = self.overlay.zones_of(receiver.node_id)
        receiver_id = receiver.node_id
        receive = self._receive_record
        rtable = receiver.table
        believed_get = rtable._records.get
        advance = rtable.advance_freshness
        heard_get = table.heard.get
        for nid, rec in table.records.items():
            if nid == receiver_id:
                continue
            existing = believed_get(nid)
            if existing is not None and rec.version <= existing.version:
                advance(nid, heard_get(nid, _NEG_INF))
            else:
                receive(
                    receiver, rec, now,
                    heard_at=heard_get(nid, _NEG_INF), own_zones=own_zones,
                )

    def _receive_record(
        self,
        receiver: ProtocolNode,
        record: BeliefRecord,
        now: float,
        heard: bool = False,
        heard_at: Optional[float] = None,
        own_zones: Optional[List] = None,
    ) -> None:
        """Apply one advertised record to a believed table.

        Records that no longer abut the receiver's zones remove any existing
        entry (the sender moved away); new abutting records repair broken
        links.  Only *direct* heartbeats refresh liveness (``heard``), so
        gossip about a dead node cannot suppress its failure detection.
        """
        if record.node_id == receiver.node_id:
            return
        existing = receiver.table.get(record.node_id)
        if existing is not None and record.version <= existing.version:
            # Nothing structural to learn (same or older zones — abutment
            # cannot have changed); just move liveness evidence forward.
            # This is the hot path: most gossiped records are already known.
            receiver.table.advance_freshness(
                record.node_id, now if heard else heard_at
            )
            return
        memo_key = (record.node_id, record.version)
        if (
            existing is None
            and receiver._non_abutting.get(memo_key) == receiver.own_version
        ):
            return  # same record, same zones: still not our neighbor
        if own_zones is None:
            own_zones = self.overlay.zones_of(receiver.node_id)
        if not self._record_relevant(receiver, record, own_zones):
            if existing is not None:
                receiver.table.remove(record.node_id)
                receiver.gap_dirty = True
            else:
                receiver._non_abutting[memo_key] = receiver.own_version
            return
        # NOTE: plain inserts/updates never *open* a coverage gap at the
        # receiver, so they do not trigger the adaptive gap check; removals
        # and local zone changes do (set by the callers concerned).
        receiver.table.upsert(record, now, heard=heard, heard_at=heard_at)

    def _record_relevant(
        self,
        receiver: ProtocolNode,
        record: BeliefRecord,
        own_zones: List,
    ) -> bool:
        """Does this record's subject abut the receiver's zones?

        When the record carries the subject's *current* version and the
        subject still holds zones in the overlay, the record's zones are by
        construction the subject's ground-truth zones (overlay mutation
        always precedes the version bump), so abutment reduces to a lookup
        in the overlay's leaf-adjacency index.  Stale records (an old
        version, or a subject whose zones were handed off) fall back to the
        geometric scan — their zones exist nowhere but in the record.
        """
        subject = self.nodes.get(record.node_id)
        if (
            subject is not None
            and subject.own_version == record.version
            and record.node_id in self.overlay.members
        ):
            return record.node_id in self.overlay.neighbor_set(receiver.node_id)
        return record.abuts_any(own_zones)

    # -- failure detection & take-over -------------------------------------------------
    def _detect_failures(self, now: float) -> None:
        timeout = self.config.failure_timeout
        for node_id in self._sorted_node_ids():
            if not self.overlay.is_alive(node_id):
                continue
            self._detect_failures_at(self.nodes[node_id], now, timeout)

    def _detect_failures_at(
        self, pnode: ProtocolNode, now: float, timeout: float
    ) -> None:
        """Time out this node's silent believed neighbors (both engines)."""
        node_id = pnode.node_id
        for stale_id in pnode.table.stale_ids(now, timeout):
            pnode.table.remove(stale_id, now)
            pnode.gap_dirty = True
            if self.tracer is not None:
                self.tracer.emit(
                    now, "hb.failure_detected", node=node_id, suspect=stale_id
                )
            # First believer to time out a *genuinely* failed node
            # defines the protocol's detection instant.  Timeouts of
            # live-but-silenced nodes (message loss) are just broken
            # links, not detections.
            if (
                stale_id in self._fail_times
                and stale_id not in self._detected_failures
            ):
                self._detected_failures.add(stale_id)
                if self._detection_sketch is not None:
                    self._detection_sketch.insert(
                        now - self._fail_times[stale_id]
                    )
                if self.on_failure_detected is not None:
                    self.on_failure_detected(stale_id, now)

    def _claim_timed_out_zones(self, now: float) -> None:
        """Execute predetermined take-overs for detected failures.

        The overlay performs the transfers at detection time regardless of
        scheme (zone reassignment always eventually happens in a CAN); what
        differs per scheme is how much the claimant *knows* — whether it has
        the dead node's table to notify the vacated zone's neighbors.
        """
        timeout = self.config.failure_timeout
        due = sorted(
            nid for nid, t in self._fail_times.items() if now - t >= timeout
        )
        for dead_id in due:
            # Fallback detection: a crash nobody's table timed out (e.g.
            # every believer died first) is noticed at claim time at the
            # latest, so the recovery layer never waits forever.
            if dead_id not in self._detected_failures:
                if self._detection_sketch is not None:
                    self._detection_sketch.insert(
                        now - self._fail_times[dead_id]
                    )
                if self.on_failure_detected is not None:
                    self.on_failure_detected(dead_id, now)
            self._detected_failures.discard(dead_id)
            dead_table = self.nodes[dead_id].table.snapshot()
            transfers = self.overlay.claim_zones(dead_id)
            self.events["claims"] += 1
            for transfer in transfers:
                claimant = self.nodes.get(transfer.to_node)
                if claimant is None:
                    continue  # claimant itself died in the same window
                claimant.bump_version()
                known_table = claimant.stored_tables.get(dead_id)
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        "hb.takeover",
                        claimant=claimant.node_id,
                        dead=dead_id,
                        informed=known_table is not None,
                    )
                self._claim_zone(claimant, dead_id, transfer, known_table, now)
            del self._fail_times[dead_id]
            self._drop_node(dead_id)
            # purge exactly the nodes holding the dead node's table (the
            # reverse index), instead of sweeping the whole population
            for holder_id in self._stored_in.pop(dead_id, ()):
                holder = self.nodes.get(holder_id)
                if holder is not None:
                    holder.stored_tables.pop(dead_id, None)
                    holder.processed_epoch.pop(dead_id, None)

    def _claim_zone(
        self,
        claimant: ProtocolNode,
        dead_id: int,
        transfer: Transfer,
        known_table: Optional[TableSnapshot],
        now: float,
    ) -> None:
        claimant.table.remove(dead_id)
        claimant.gap_dirty = True
        if known_table:
            self._absorb_table(claimant, known_table, now)
            claimant.table.remove(dead_id)
        self._notify_takeover(claimant, dead_id, transfer, known_table or {}, now)

    def _notify_takeover(
        self,
        claimant: ProtocolNode,
        vacated_id: int,
        transfer: Transfer,
        source_table: TableSnapshot,
        now: float,
    ) -> None:
        """Announce the new ownership to everyone the claimant knows about."""
        model = self.config.size_model
        dims = self.overlay.space.dims
        candidates: Dict[int, BeliefRecord] = {
            nid: rec for nid, (rec, _) in source_table.items()
        }
        for rec in claimant.table.records():
            candidates.setdefault(rec.node_id, rec)
        targets = sorted(
            rec.node_id
            for rec in candidates.values()
            if rec.node_id not in (claimant.node_id, vacated_id)
            and any(z.abuts(transfer.zone) for z in rec.zones)
        )
        self._record(
            now, MessageType.TAKEOVER_NOTIFY, model.notify_bytes(dims), len(targets)
        )
        claim_record = claimant.own_record(self.overlay)
        net_active = not self.net.is_identity
        for target_id in targets:
            if (
                net_active
                and self._transmit(claimant.node_id, target_id, now) is None
            ):
                continue  # notify lost; the believer times the ghost out
            receiver = self._deliverable(target_id)
            if receiver is None:
                continue
            if receiver.table.remove(vacated_id, now):
                receiver.gap_dirty = True
            self._receive_record(receiver, claim_record, now)

    # -- adaptive repair -----------------------------------------------------------------
    def _adaptive_gap_checks(self, now: float) -> None:
        model = self.config.size_model
        dims = self.overlay.space.dims
        periodic = (
            self.config.periodic_gap_check_every
            and self._round % self.config.periodic_gap_check_every == 0
        )
        # Without the periodic sweep only dirty nodes can pass the filter
        # below, so visiting sorted(dirty) instead of sorted(all) reaches
        # the same nodes in the same order (RNG draw order included).
        candidates = (
            self._sorted_node_ids() if periodic else sorted(self._gap_dirty_ids)
        )
        for node_id in candidates:
            pnode = self.nodes.get(node_id)
            if pnode is None or not self.overlay.is_alive(node_id):
                continue
            if not (pnode.gap_dirty or periodic):
                continue
            if self.config.gap_detection_prob < 1.0 and self._rng is not None:
                if self._rng.random() >= self.config.gap_detection_prob:
                    continue  # the coverage check missed the gap this round
            if not self._detects_gap(node_id):
                pnode.gap_dirty = False
                pnode.gap_attempts = 0
                continue
            if self.tracer is not None:
                self.tracer.emit(
                    now, "hb.gap_found", node=node_id, attempt=pnode.gap_attempts + 1
                )
            # Broadcast a full-update request to every believed neighbor;
            # each live one answers with its full table.
            targets = pnode.table.sorted_ids()
            self._record(
                now,
                MessageType.FULL_UPDATE_REQUEST,
                model.request_bytes(),
                len(targets),
            )
            net_active = not self.net.is_identity
            for target_id in targets:
                if (
                    net_active
                    and self._transmit(node_id, target_id, now) is None
                ):
                    continue  # request lost; the gap stays dirty, retried
                responder = self._deliverable(target_id)
                if responder is None:
                    continue
                self._record(
                    now,
                    MessageType.FULL_UPDATE_REPLY,
                    model.table_bytes_from_totals(
                        dims,
                        len(responder.table) + 1,
                        responder.table.total_zones() + 1,
                    ),
                )
                if (
                    net_active
                    and self._transmit(target_id, node_id, now) is None
                ):
                    continue  # reply lost in flight (responder paid bytes)
                # The reply crosses the network; it lands next round.
                self._reply_queue.append(
                    (
                        node_id,
                        responder.own_record(self.overlay),
                        responder.table.snapshot(),
                    )
                )
            pnode.gap_attempts += 1
            pnode.gap_dirty = (
                pnode.gap_attempts < self.config.gap_retry_rounds
            )

    def _deliver_deferred(self, now: float) -> None:
        """Land heartbeats whose link latency outran the round period.

        A late heartbeat proves the sender was alive at *send* time, so
        deliveries advance freshness to the send stamp, not ``now`` — a
        message stuck behind a slow link cannot launder stale evidence
        into fresh evidence.
        """
        if not self._deferred:
            return
        due = [entry for entry in self._deferred if entry[0] <= now]
        if not due:
            return
        self._deferred = [entry for entry in self._deferred if entry[0] > now]
        due.sort(key=lambda entry: entry[0])  # stable: FIFO within a round
        for arrival, kind, receiver_id, own, snapshot, sent_at in due:
            receiver = self._deliverable(receiver_id)
            if receiver is None:
                continue  # receiver died while the message was in flight
            if self.tracer is not None:
                self.tracer.emit(
                    now, "net.deliver_late", dst=receiver_id,
                    src=own.node_id, sent_at=sent_at,
                )
            if not receiver.table.heard_from(own, sent_at):
                self._receive_record(receiver, own, now, heard_at=sent_at)
            if kind == "full" and snapshot is not None:
                # the stored-table copy still serves a later take-over;
                # skip the processed-epoch memo — it tracks *current*
                # tables and this one is stale by construction
                self._stored_in.setdefault(own.node_id, set()).add(
                    receiver_id
                )
                receiver.stored_tables[own.node_id] = snapshot
                self._absorb_table(receiver, snapshot, now)

    def _deliver_replies(self, now: float) -> None:
        """Deliver last round's full-update replies to their requesters."""
        self._deliver_deferred(now)
        queue, self._reply_queue = self._reply_queue, []
        for receiver_id, own_record, snapshot in queue:
            receiver = self._deliverable(receiver_id)
            if receiver is None:
                continue
            self._receive_record(receiver, own_record, now)
            self._absorb_table(receiver, snapshot, now)
            if not self._detects_gap(receiver_id):
                if (
                    self.tracer is not None
                    and (receiver.gap_attempts or receiver.gap_dirty)
                ):
                    self.tracer.emit(now, "hb.gap_repaired", node=receiver_id)
                receiver.gap_attempts = 0
                receiver.gap_dirty = False

    def _detects_gap(self, node_id: int) -> bool:
        """Would this node's local broken-link detector fire right now?

        ``coverage`` mode runs the real algorithm: check that the believed
        neighbor zones tile every interior face of the node's zones.  It
        can miss gaps hidden behind stale believed zones — the honest
        failure mode of a local checker.  ``oracle`` mode compares with
        ground truth (never misses).

        The verdict is a pure function of (time, overlay topology, believed
        table state, own zones), so it is memoized on that key: the adaptive
        scheme re-asks after every delivered reply in a round, and most
        replies change none of the inputs.
        """
        pnode = self.nodes[node_id]
        key = (
            self._now,
            self.overlay.topology_version,
            pnode.table.epoch,
            pnode.own_version,
        )
        memo = pnode._gap_memo
        if memo is not None and memo[0] == key:
            return memo[1]
        verdict = self._detects_gap_uncached(node_id, pnode)
        pnode._gap_memo = (key, verdict)
        return verdict

    def _detects_gap_uncached(self, node_id: int, pnode: ProtocolNode) -> bool:
        if self.config.detection == "oracle":
            return bool(self._missing_neighbors(node_id))
        believed = [z for rec in pnode.table.records() for z in rec.zones]
        # a just-removed (suspected-failed) neighbor's zone is not a broken
        # link yet: its predetermined take-over is in flight
        believed += pnode.table.grace_zones(
            self._now, self.config.failure_timeout
        )
        dims = self.overlay.space.dims
        return has_gap(
            self.overlay.zones_of(node_id),
            believed,
            [0.0] * dims,
            [1.0] * dims,
        )

    # -- metrics -----------------------------------------------------------------------
    def _missing_neighbors(self, node_id: int) -> Set[int]:
        truth = {
            nid
            for nid in self.overlay.neighbor_set(node_id)
            if self.overlay.is_alive(nid)
        }
        return truth - self.nodes[node_id].table.ids()

    def count_broken_links(self) -> int:
        """Directed count of ground-truth neighbors missing from beliefs.

        Per-node counts are cached against (neighborhood stamp, table
        epoch): a node whose surroundings and beliefs did not change since
        the last round contributes its previous count without recomputation.
        """
        overlay = self.overlay
        alive = overlay.is_alive
        total = 0
        for node_id, pnode in self.nodes.items():
            if not alive(node_id):
                continue
            key = (overlay.neighborhood_stamp(node_id), pnode.table.epoch)
            cached = pnode._broken_cache
            if cached is not None and cached[0] == key:
                total += cached[1]
                continue
            believed = pnode.table.ids_view()
            missing = 0
            for nid in overlay.neighbor_set(node_id):
                if nid not in believed and alive(nid):
                    missing += 1
            pnode._broken_cache = (key, missing)
            total += missing
        return total

    # -- plumbing ----------------------------------------------------------------------
    def _sorted_node_ids(self) -> List[int]:
        """Sorted member ids, cached until the membership changes.

        Callers iterate but never mutate the returned list; any join or
        departure resets ``_nodes_order`` to None.
        """
        order = self._nodes_order
        if order is None:
            order = self._nodes_order = sorted(self.nodes)
        return order

    def _deliverable(self, node_id: int) -> Optional[ProtocolNode]:
        """Target of a message: None when it is dead or gone (message lost)."""
        if not self.overlay.is_alive(node_id):
            return None
        return self.nodes.get(node_id)

    def _retry_pending_joins(self, now: float) -> None:
        pending, self._pending_joins = self._pending_joins, []
        for node_id, coord in pending:
            self.join(node_id, coord, now)

    def _takeover_targets_map(self) -> Dict[int, Set[int]]:
        version = self.overlay.topology_version
        cached_version, cached = self._takeover_cache
        if cached_version == version:
            return cached
        dead = self.overlay.dead_ids()
        fresh = {
            nid: self.overlay.takeover_targets(nid, dead)
            for nid in self.overlay.alive_ids()
        }
        self._takeover_cache = (version, fresh)
        return fresh
