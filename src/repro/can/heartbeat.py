"""The CAN maintenance protocol: heartbeats, failures, take-overs, repair.

This engine simulates the *information* plane of the CAN.  Ground truth
(zones, ownership) lives in :class:`~repro.can.overlay.CanOverlay`; each
node's believed neighbor table lives in a :class:`ProtocolNode` and changes
only when messages deliver.  Three heartbeat schemes are implemented
(paper, Section IV):

* **vanilla** — every heartbeat carries the sender's full neighbor table;
  receivers can repair broken links from third-party records (Figure 2) at
  O(d²) volume per node.
* **compact** — full tables go only to the sender's predetermined take-over
  node(s) (from the zone split history); everyone else gets the sender's own
  record plus O(d) aggregated load info.  Volume drops to O(d) but mutual
  broken links can no longer self-heal.
* **adaptive** — compact, plus an on-demand *full-update request* broadcast
  to all neighbors when a node detects a broken link (a coverage gap around
  its zone); neighbors answer with their full tables.

Message *timing* is simplified to synchronous rounds every ``period``
seconds (all nodes share the heartbeat period), which is the granularity the
paper's experiments use; joins/leaves/failures occur at arbitrary simulated
times between rounds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..obs.profiling import NULL_PROFILER
from ..sim.monitor import TimeSeries
from .coverage import has_gap
from .messages import MessageType, SizeModel
from .neighbor import BeliefRecord, NeighborTable, TableSnapshot
from .overlay import CanOverlay, OverlayError, Transfer
from .stats import MessageStats

__all__ = ["HeartbeatScheme", "ProtocolConfig", "HeartbeatProtocol", "ProtocolNode"]


class HeartbeatScheme(enum.Enum):
    VANILLA = "vanilla"
    COMPACT = "compact"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class ProtocolConfig:
    """Tunables of the maintenance protocol."""

    scheme: HeartbeatScheme = HeartbeatScheme.VANILLA
    #: heartbeat period in simulated seconds
    period: float = 60.0
    #: a neighbor is declared failed after this many silent periods
    failure_timeout_periods: float = 2.5
    #: adaptive: how many consecutive rounds a node keeps re-requesting
    #: full updates while its detected gap persists before giving up
    gap_retry_rounds: int = 2
    #: adaptive: also run the coverage check every k rounds even without a
    #: local table change (0 disables the periodic check)
    periodic_gap_check_every: int = 0
    #: adaptive: probability that a real coverage gap is noticed by the
    #: local coverage computation in a given round.  In high dimension a
    #: stale believed zone can spuriously cover a vacated area, hiding the
    #: gap — 1.0 models a perfect checker (see DESIGN.md)
    gap_detection_prob: float = 1.0
    #: adaptive's gap detector: "coverage" runs the real local zone-face
    #: coverage computation over believed zones (repro.can.coverage);
    #: "oracle" compares against ground truth (an idealised upper bound)
    detection: str = "coverage"
    size_model: SizeModel = field(default_factory=SizeModel)

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("period must be positive")
        if self.failure_timeout_periods < 1:
            raise ValueError("failure timeout must be at least one period")
        if self.gap_retry_rounds < 0 or self.periodic_gap_check_every < 0:
            raise ValueError("retry/periodic settings must be non-negative")
        if not 0.0 <= self.gap_detection_prob <= 1.0:
            raise ValueError("gap_detection_prob must be a probability")
        if self.detection not in ("coverage", "oracle"):
            raise ValueError(f"unknown detection mode {self.detection!r}")

    @property
    def failure_timeout(self) -> float:
        return self.period * self.failure_timeout_periods


class ProtocolNode:
    """Per-node protocol state: believed table, stored tables, gap flags."""

    __slots__ = (
        "node_id",
        "table",
        "own_version",
        "stored_tables",
        "processed_epoch",
        "gap_dirty",
        "gap_attempts",
        "_record_cache",
        "_record_cache_version",
        "_non_abutting",
    )

    def __init__(self, node_id: int, freshness_ttl: float = float("inf")):
        self.node_id = node_id
        self.table = NeighborTable(freshness_ttl)
        self.own_version = 0
        #: full tables received from other nodes (vanilla: every neighbor;
        #: compact/adaptive: only nodes whose take-over target we are) —
        #: this is what makes a take-over possible after a silent failure
        self.stored_tables: Dict[int, TableSnapshot] = {}
        #: (sender table epoch, our own version, our table epoch) at the
        #: last full-table merge per sender — re-merge when any changed:
        #: our zone changes alter which records abut us, and our own table
        #: changes (e.g. a removal) alter what a merge would contribute
        self.processed_epoch: Dict[int, Tuple[int, int, int]] = {}
        self.gap_dirty = False
        self.gap_attempts = 0
        self._record_cache: Optional[BeliefRecord] = None
        self._record_cache_version = -1
        #: negative abutment memo: (node_id, version) -> our own_version at
        #: test time.  Gossip keeps re-sending the same far-away records;
        #: re-testing zone abutment for each would dominate the run time.
        self._non_abutting: Dict[Tuple[int, int], int] = {}

    def bump_version(self) -> None:
        self.own_version += 1
        self._record_cache = None

    def own_record(self, overlay: CanOverlay) -> BeliefRecord:
        if self._record_cache is None or self._record_cache_version != self.own_version:
            self._record_cache = BeliefRecord(
                node_id=self.node_id,
                version=self.own_version,
                zones=tuple(overlay.zones_of(self.node_id)),
                coord=overlay.coordinate(self.node_id),
            )
            self._record_cache_version = self.own_version
        return self._record_cache


class HeartbeatProtocol:
    """Drives rounds of heartbeats plus the join/leave/failure protocol."""

    def __init__(
        self,
        overlay: CanOverlay,
        config: ProtocolConfig,
        rng: Optional["np.random.Generator"] = None,
        tracer: Optional[object] = None,
        profiler: Optional[object] = None,
    ):
        self.overlay = overlay
        self.config = config
        self._rng = rng
        #: optional repro.obs.Tracer; None keeps every emit site to a
        #: single attribute test (the default, benchmark-grade path)
        self.tracer = tracer
        #: optional repro.obs.Profiler; run_round wraps its phases in
        #: scopes (a handful of no-op context managers per round when off)
        self.profiler = profiler
        self.stats = MessageStats()
        self.nodes: Dict[int, ProtocolNode] = {}
        self.broken_links = TimeSeries("broken_links")
        self._fail_times: Dict[int, float] = {}
        self._pending_joins: List[Tuple[int, Tuple[float, ...]]] = []
        self._round = 0
        self._now = 0.0
        self._takeover_cache: Tuple[int, Dict[int, Set[int]]] = (-1, {})
        #: full-update replies in flight: (receiver id, responder record,
        #: responder table snapshot) — sent in one round, delivered with the
        #: next round's messages (one heartbeat period of latency)
        self._reply_queue: List[Tuple[int, BeliefRecord, TableSnapshot]] = []
        self.events = {"joins": 0, "leaves": 0, "failures": 0, "claims": 0}

    def _record(
        self, now: float, mtype: MessageType, size_bytes: int, copies: int = 1
    ) -> None:
        """Account a send in MessageStats and mirror it onto the tracer.

        Emitting from the same call site that feeds the stats keeps traces
        consistent with :class:`MessageStats` by construction.
        """
        self.stats.record(mtype, size_bytes, copies)
        if self.tracer is not None and copies:
            self.tracer.emit(
                now, "msg.sent", mtype=mtype.value, bytes=size_bytes, copies=copies
            )

    # ------------------------------------------------------------------ topology --
    def bootstrap(self, node_id: int, coord: Sequence[float], now: float = 0.0) -> None:
        """Insert the very first CAN member."""
        self.overlay.add_node(node_id, coord)
        self.nodes[node_id] = ProtocolNode(node_id, self.config.failure_timeout)

    def join(self, node_id: int, coord: Sequence[float], now: float) -> bool:
        """A node joins; returns False when deferred (target zone in limbo)."""
        coord = tuple(coord)
        try:
            result = self.overlay.add_node(node_id, coord)
        except OverlayError:
            # The containing zone belongs to a failed-but-unclaimed node;
            # retry once the take-over has happened.
            self._pending_joins.append((node_id, coord))
            if self.tracer is not None:
                self.tracer.emit(now, "can.join_deferred", node=node_id)
            return False
        self.events["joins"] += 1
        if self.tracer is not None:
            self.tracer.emit(
                now, "can.join", node=node_id, splitter=result.splitter_id
            )
        newcomer = ProtocolNode(node_id, self.config.failure_timeout)
        self.nodes[node_id] = newcomer
        splitter = self.nodes[result.splitter_id]
        splitter.bump_version()

        model = self.config.size_model
        dims = self.overlay.space.dims
        new_zones = self.overlay.zones_of(node_id)

        # Join reply: the splitter hands the newcomer its own record plus the
        # slice of its believed table relevant to the newcomer's zone.
        slice_records = [
            (rec, heard_at)
            for rec, heard_at in splitter.table.snapshot().values()
            if rec.abuts_any(new_zones)
        ]
        self._record(
            now,
            MessageType.JOIN_REPLY,
            model.table_bytes(dims, [r.zone_count for r, _ in slice_records] + [1]),
        )
        for rec, heard_at in slice_records:
            newcomer.table.upsert(rec, now, heard_at=heard_at)
        newcomer.table.upsert(splitter.own_record(self.overlay), now)
        newcomer.gap_dirty = True

        # The splitter's zone shrank: drop neighbors now adjacent only to
        # the newcomer, and add the newcomer itself.
        notify_ids = sorted(splitter.table.ids())
        splitter.table.prune_non_abutting(self.overlay.zones_of(splitter.node_id))
        new_record = newcomer.own_record(self.overlay)
        if new_record.abuts_any(self.overlay.zones_of(splitter.node_id)):
            splitter.table.upsert(new_record, now)
        splitter.gap_dirty = True

        # Join notify: splitter announces its new zone and the newcomer to
        # its (pre-split) believed neighbors.
        self._record(
            now, MessageType.JOIN_NOTIFY, model.notify_bytes(dims), len(notify_ids)
        )
        splitter_record = splitter.own_record(self.overlay)
        for target_id in notify_ids:
            target = self._deliverable(target_id)
            if target is None:
                continue
            self._receive_record(target, splitter_record, now)
            self._receive_record(target, new_record, now)
        return True

    def graceful_leave(self, node_id: int, now: float) -> None:
        """Voluntary departure with explicit hand-off to take-over nodes."""
        leaver = self.nodes[node_id]
        transfers = self.overlay.graceful_leave(node_id)
        self.events["leaves"] += 1
        if self.tracer is not None:
            self.tracer.emit(now, "can.leave", node=node_id)
        model = self.config.size_model
        dims = self.overlay.space.dims
        leaver_table = leaver.table.snapshot()
        for transfer in transfers:
            claimant = self.nodes[transfer.to_node]
            claimant.bump_version()
            self._record(
                now,
                MessageType.HANDOFF,
                model.table_bytes(dims, [rec.zone_count for rec, _ in leaver_table.values()]),
            )
            self._absorb_table(claimant, leaver_table, now)
            claimant.table.remove(node_id)
            claimant.gap_dirty = True
            self._notify_takeover(claimant, node_id, transfer, leaver_table, now)
        del self.nodes[node_id]

    def fail(self, node_id: int, now: float) -> None:
        """Silent crash: no messages; neighbors find out via timeouts."""
        self.overlay.fail(node_id)
        self.events["failures"] += 1
        self._fail_times[node_id] = now
        if self.tracer is not None:
            self.tracer.emit(now, "can.fail", node=node_id)

    # ------------------------------------------------------------------ the round --
    def run_round(self, now: float) -> None:
        """One heartbeat period: exchange, detect, claim, repair, measure.

        Each phase runs under a profiler scope named for the scheme
        (``hb.round.vanilla/hb.exchange`` ...), so per-scheme heartbeat
        generation/processing cost is separable in bench profiles.
        """
        prof = self.profiler if self.profiler is not None else NULL_PROFILER
        self._round += 1
        self._now = now
        self.stats.track_population(now, len(self.overlay.alive_ids()))
        with prof.scope(f"hb.round.{self.config.scheme.value}"):
            with prof.scope("hb.retry_joins"):
                self._retry_pending_joins(now)
            with prof.scope("hb.exchange"):
                self._exchange_heartbeats(now)
            with prof.scope("hb.deliver_replies"):
                self._deliver_replies(now)
            with prof.scope("hb.detect_failures"):
                self._detect_failures(now)
            with prof.scope("hb.claim_zones"):
                self._claim_timed_out_zones(now)
            if self.config.scheme is HeartbeatScheme.ADAPTIVE:
                with prof.scope("hb.gap_checks"):
                    self._adaptive_gap_checks(now)
            with prof.scope("hb.count_broken_links"):
                broken = self.count_broken_links()
        self.broken_links.record(now, float(broken))
        if self.tracer is not None:
            self.tracer.emit(
                now,
                "hb.round",
                round=self._round,
                population=len(self.overlay.alive_ids()),
                broken_links=broken,
            )

    # -- heartbeat exchange ---------------------------------------------------------
    def _exchange_heartbeats(self, now: float) -> None:
        model = self.config.size_model
        dims = self.overlay.space.dims
        vanilla = self.config.scheme is HeartbeatScheme.VANILLA
        takeovers = self._takeover_targets_map() if not vanilla else {}
        for node_id in sorted(self.nodes):
            if not self.overlay.is_alive(node_id):
                continue  # ghosts are silent
            sender = self.nodes[node_id]
            targets = sorted(sender.table.ids())
            if not targets:
                continue
            own = sender.own_record(self.overlay)
            records = sender.table.records()
            full_size = model.heartbeat_bytes(
                dims, own.zone_count, [r.zone_count for r in records]
            )
            compact_size = model.heartbeat_bytes(dims, own.zone_count, None)
            if vanilla:
                full_targets, compact_targets = targets, []
            else:
                tset = takeovers.get(node_id, set())
                full_targets = [t for t in targets if t in tset]
                compact_targets = [t for t in targets if t not in tset]
            self._record(
                now, MessageType.HEARTBEAT_FULL, full_size, len(full_targets)
            )
            self._record(
                now, MessageType.HEARTBEAT, compact_size, len(compact_targets)
            )
            for target_id in full_targets:
                receiver = self._deliverable(target_id)
                if receiver is None:
                    continue
                self._receive_record(receiver, own, now, heard=True)
                self._merge_full_table(receiver, sender, now)
            for target_id in compact_targets:
                receiver = self._deliverable(target_id)
                if receiver is None:
                    continue
                self._receive_record(receiver, own, now, heard=True)

    def _merge_full_table(
        self, receiver: ProtocolNode, sender: ProtocolNode, now: float
    ) -> None:
        """Process a full neighbor table, skipping unchanged re-sends."""
        key = (
            sender.table.epoch,
            receiver.own_version,
            receiver.table.removals_epoch,
        )
        last = receiver.processed_epoch.get(sender.node_id)
        if last == key:
            receiver.stored_tables[sender.node_id] = sender.table.snapshot()
            return
        receiver.stored_tables[sender.node_id] = sender.table.snapshot()
        if last is not None and last[1:] == key[1:]:
            # Only the sender's table advanced: merging the delta suffices.
            # (Local removals or zone changes force a full re-merge below —
            # an unchanged remote record may then become relevant again.)
            own_zones = self.overlay.zones_of(receiver.node_id)
            for rec, heard_at in sender.table.records_since(last[0]):
                if rec.node_id != receiver.node_id:
                    self._receive_record(
                        receiver, rec, now, heard_at=heard_at,
                        own_zones=own_zones,
                    )
        else:
            self._absorb_table(
                receiver, receiver.stored_tables[sender.node_id], now
            )
        receiver.processed_epoch[sender.node_id] = key

    def _absorb_table(
        self,
        receiver: ProtocolNode,
        table: TableSnapshot,
        now: float,
    ) -> None:
        """Merge third-party records that abut the receiver's zones."""
        own_zones = self.overlay.zones_of(receiver.node_id)
        for rec, heard_at in table.values():
            if rec.node_id == receiver.node_id:
                continue
            self._receive_record(
                receiver, rec, now, heard_at=heard_at, own_zones=own_zones
            )

    def _receive_record(
        self,
        receiver: ProtocolNode,
        record: BeliefRecord,
        now: float,
        heard: bool = False,
        heard_at: Optional[float] = None,
        own_zones: Optional[List] = None,
    ) -> None:
        """Apply one advertised record to a believed table.

        Records that no longer abut the receiver's zones remove any existing
        entry (the sender moved away); new abutting records repair broken
        links.  Only *direct* heartbeats refresh liveness (``heard``), so
        gossip about a dead node cannot suppress its failure detection.
        """
        if record.node_id == receiver.node_id:
            return
        existing = receiver.table.get(record.node_id)
        if existing is not None and record.version <= existing.version:
            # Nothing structural to learn (same or older zones — abutment
            # cannot have changed); just move liveness evidence forward.
            # This is the hot path: most gossiped records are already known.
            receiver.table.advance_freshness(
                record.node_id, now if heard else heard_at
            )
            return
        memo_key = (record.node_id, record.version)
        if (
            existing is None
            and receiver._non_abutting.get(memo_key) == receiver.own_version
        ):
            return  # same record, same zones: still not our neighbor
        if own_zones is None:
            own_zones = self.overlay.zones_of(receiver.node_id)
        if not record.abuts_any(own_zones):
            if existing is not None:
                receiver.table.remove(record.node_id)
                receiver.gap_dirty = True
            else:
                receiver._non_abutting[memo_key] = receiver.own_version
            return
        # NOTE: plain inserts/updates never *open* a coverage gap at the
        # receiver, so they do not trigger the adaptive gap check; removals
        # and local zone changes do (set by the callers concerned).
        receiver.table.upsert(record, now, heard=heard, heard_at=heard_at)

    # -- failure detection & take-over -------------------------------------------------
    def _detect_failures(self, now: float) -> None:
        timeout = self.config.failure_timeout
        for node_id in sorted(self.nodes):
            if not self.overlay.is_alive(node_id):
                continue
            pnode = self.nodes[node_id]
            for stale_id in pnode.table.stale_ids(now, timeout):
                pnode.table.remove(stale_id, now)
                pnode.gap_dirty = True
                if self.tracer is not None:
                    self.tracer.emit(
                        now, "hb.failure_detected", node=node_id, suspect=stale_id
                    )

    def _claim_timed_out_zones(self, now: float) -> None:
        """Execute predetermined take-overs for detected failures.

        The overlay performs the transfers at detection time regardless of
        scheme (zone reassignment always eventually happens in a CAN); what
        differs per scheme is how much the claimant *knows* — whether it has
        the dead node's table to notify the vacated zone's neighbors.
        """
        timeout = self.config.failure_timeout
        due = sorted(
            nid for nid, t in self._fail_times.items() if now - t >= timeout
        )
        for dead_id in due:
            dead_table = self.nodes[dead_id].table.snapshot()
            transfers = self.overlay.claim_zones(dead_id)
            self.events["claims"] += 1
            for transfer in transfers:
                claimant = self.nodes.get(transfer.to_node)
                if claimant is None:
                    continue  # claimant itself died in the same window
                claimant.bump_version()
                known_table = claimant.stored_tables.get(dead_id)
                if self.tracer is not None:
                    self.tracer.emit(
                        now,
                        "hb.takeover",
                        claimant=claimant.node_id,
                        dead=dead_id,
                        informed=known_table is not None,
                    )
                self._claim_zone(claimant, dead_id, transfer, known_table, now)
            del self._fail_times[dead_id]
            del self.nodes[dead_id]
            for pnode in self.nodes.values():
                pnode.stored_tables.pop(dead_id, None)
                pnode.processed_epoch.pop(dead_id, None)

    def _claim_zone(
        self,
        claimant: ProtocolNode,
        dead_id: int,
        transfer: Transfer,
        known_table: Optional[TableSnapshot],
        now: float,
    ) -> None:
        claimant.table.remove(dead_id)
        claimant.gap_dirty = True
        if known_table:
            self._absorb_table(claimant, known_table, now)
            claimant.table.remove(dead_id)
        self._notify_takeover(claimant, dead_id, transfer, known_table or {}, now)

    def _notify_takeover(
        self,
        claimant: ProtocolNode,
        vacated_id: int,
        transfer: Transfer,
        source_table: TableSnapshot,
        now: float,
    ) -> None:
        """Announce the new ownership to everyone the claimant knows about."""
        model = self.config.size_model
        dims = self.overlay.space.dims
        candidates: Dict[int, BeliefRecord] = {
            nid: rec for nid, (rec, _) in source_table.items()
        }
        for rec in claimant.table.records():
            candidates.setdefault(rec.node_id, rec)
        targets = sorted(
            rec.node_id
            for rec in candidates.values()
            if rec.node_id not in (claimant.node_id, vacated_id)
            and any(z.abuts(transfer.zone) for z in rec.zones)
        )
        self._record(
            now, MessageType.TAKEOVER_NOTIFY, model.notify_bytes(dims), len(targets)
        )
        claim_record = claimant.own_record(self.overlay)
        for target_id in targets:
            receiver = self._deliverable(target_id)
            if receiver is None:
                continue
            if receiver.table.remove(vacated_id, now):
                receiver.gap_dirty = True
            self._receive_record(receiver, claim_record, now)

    # -- adaptive repair -----------------------------------------------------------------
    def _adaptive_gap_checks(self, now: float) -> None:
        model = self.config.size_model
        dims = self.overlay.space.dims
        periodic = (
            self.config.periodic_gap_check_every
            and self._round % self.config.periodic_gap_check_every == 0
        )
        for node_id in sorted(self.nodes):
            if not self.overlay.is_alive(node_id):
                continue
            pnode = self.nodes[node_id]
            if not (pnode.gap_dirty or periodic):
                continue
            if self.config.gap_detection_prob < 1.0 and self._rng is not None:
                if self._rng.random() >= self.config.gap_detection_prob:
                    continue  # the coverage check missed the gap this round
            if not self._detects_gap(node_id):
                pnode.gap_dirty = False
                pnode.gap_attempts = 0
                continue
            if self.tracer is not None:
                self.tracer.emit(
                    now, "hb.gap_found", node=node_id, attempt=pnode.gap_attempts + 1
                )
            # Broadcast a full-update request to every believed neighbor;
            # each live one answers with its full table.
            targets = sorted(pnode.table.ids())
            self._record(
                now,
                MessageType.FULL_UPDATE_REQUEST,
                model.request_bytes(),
                len(targets),
            )
            for target_id in targets:
                responder = self._deliverable(target_id)
                if responder is None:
                    continue
                records = responder.table.records()
                self._record(
                    now,
                    MessageType.FULL_UPDATE_REPLY,
                    model.table_bytes(dims, [r.zone_count for r in records] + [1]),
                )
                # The reply crosses the network; it lands next round.
                self._reply_queue.append(
                    (
                        node_id,
                        responder.own_record(self.overlay),
                        responder.table.snapshot(),
                    )
                )
            pnode.gap_attempts += 1
            pnode.gap_dirty = pnode.gap_attempts < self.config.gap_retry_rounds

    def _deliver_replies(self, now: float) -> None:
        """Deliver last round's full-update replies to their requesters."""
        queue, self._reply_queue = self._reply_queue, []
        for receiver_id, own_record, snapshot in queue:
            receiver = self._deliverable(receiver_id)
            if receiver is None:
                continue
            self._receive_record(receiver, own_record, now)
            self._absorb_table(receiver, snapshot, now)
            if not self._detects_gap(receiver_id):
                if (
                    self.tracer is not None
                    and (receiver.gap_attempts or receiver.gap_dirty)
                ):
                    self.tracer.emit(now, "hb.gap_repaired", node=receiver_id)
                receiver.gap_attempts = 0
                receiver.gap_dirty = False

    def _detects_gap(self, node_id: int) -> bool:
        """Would this node's local broken-link detector fire right now?

        ``coverage`` mode runs the real algorithm: check that the believed
        neighbor zones tile every interior face of the node's zones.  It
        can miss gaps hidden behind stale believed zones — the honest
        failure mode of a local checker.  ``oracle`` mode compares with
        ground truth (never misses).
        """
        if self.config.detection == "oracle":
            return bool(self._missing_neighbors(node_id))
        pnode = self.nodes[node_id]
        believed = [z for rec in pnode.table.records() for z in rec.zones]
        # a just-removed (suspected-failed) neighbor's zone is not a broken
        # link yet: its predetermined take-over is in flight
        believed += pnode.table.grace_zones(
            self._now, self.config.failure_timeout
        )
        dims = self.overlay.space.dims
        return has_gap(
            self.overlay.zones_of(node_id),
            believed,
            [0.0] * dims,
            [1.0] * dims,
        )

    # -- metrics -----------------------------------------------------------------------
    def _missing_neighbors(self, node_id: int) -> Set[int]:
        truth = {
            nid
            for nid in self.overlay.neighbors(node_id)
            if self.overlay.is_alive(nid)
        }
        return truth - self.nodes[node_id].table.ids()

    def count_broken_links(self) -> int:
        """Directed count of ground-truth neighbors missing from beliefs."""
        total = 0
        for node_id in self.nodes:
            if self.overlay.is_alive(node_id):
                total += len(self._missing_neighbors(node_id))
        return total

    # -- plumbing ----------------------------------------------------------------------
    def _deliverable(self, node_id: int) -> Optional[ProtocolNode]:
        """Target of a message: None when it is dead or gone (message lost)."""
        if not self.overlay.is_alive(node_id):
            return None
        return self.nodes.get(node_id)

    def _retry_pending_joins(self, now: float) -> None:
        pending, self._pending_joins = self._pending_joins, []
        for node_id, coord in pending:
            self.join(node_id, coord, now)

    def _takeover_targets_map(self) -> Dict[int, Set[int]]:
        version = self.overlay.topology_version
        cached_version, cached = self._takeover_cache
        if cached_version == version:
            return cached
        fresh = {
            nid: self.overlay.takeover_targets(nid)
            for nid in self.overlay.alive_ids()
        }
        self._takeover_cache = (version, fresh)
        return fresh
