"""Authoritative CAN state: membership, zones, adjacency, join/leave/claim.

The overlay is the simulator's ground truth.  It maintains the split tree,
the leaf-level adjacency graph (incrementally — splits and merges only touch
local edges), and per-member zone ownership.  The messaging layer
(:mod:`repro.can.heartbeat`) maintains each node's *believed* neighbor table
separately; a believed table missing a ground-truth neighbor is precisely a
*broken link* (paper, Section IV-A).

Failure handling is split in two: :meth:`fail` marks a member dead (its
zones linger, as in reality, until neighbors time the node out), and
:meth:`claim_zones` performs the predetermined take-over transfers — the
protocol layer calls it when the failure is detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..overlay.base import SubstrateError
from .geometry import Zone
from .space import ResourceSpace
from .split_tree import Leaf, SplitTree

__all__ = ["CanOverlay", "JoinResult", "Transfer", "OverlayError"]


class OverlayError(SubstrateError):
    """Structural CAN violation (bad join, unknown member, ...)."""


@dataclass(frozen=True)
class JoinResult:
    """What happened during a join: who split, and the resulting leaves."""

    node_id: int
    splitter_id: Optional[int]  # None for the bootstrap node
    new_leaf_id: Optional[int]
    split_dim: Optional[int]
    split_position: Optional[float]


@dataclass(frozen=True)
class Transfer:
    """One zone hand-off produced by a leave or a post-failure claim."""

    leaf_id: int
    zone: Zone
    from_node: int
    to_node: int


@dataclass
class Member:
    node_id: int
    coord: Tuple[float, ...]
    alive: bool = True


class CanOverlay:
    """Ground-truth CAN: split tree + adjacency + membership."""

    def __init__(self, space: ResourceSpace):
        self.space = space
        self.tree: Optional[SplitTree] = None
        self.members: Dict[int, Member] = {}
        self._owner_leaves: Dict[int, Set[int]] = {}
        self._adj: Dict[int, Set[int]] = {}  # leaf_id -> adjacent leaf_ids
        #: bumped on every structural change; caches key off it
        self.topology_version: int = 0
        # lazy per-node directional adjacency: node -> {(dim, dir): owners}
        self._dir_cache_version: int = -1
        self._dir_cache: Dict[int, Dict[Tuple[int, int], Set[int]]] = {}
        #: per-node neighborhood stamps: ``_nbr_stamp[n]`` advances whenever
        #: node n's ground-truth neighborhood (or a neighbor's liveness) can
        #: have changed.  Unlike ``topology_version`` this is *local*: a
        #: split on the far side of the space leaves most stamps — and
        #: therefore most per-node caches — intact.
        self._nbr_tick: int = 0
        self._nbr_stamp: Dict[int, int] = {}
        self._nbr_sets: Dict[int, Tuple[int, frozenset]] = {}
        #: incremental neighbor-pair counters: ``_nbr_counts[a][b]`` is the
        #: number of adjacent leaf pairs whose owners are (a, b), a != b.
        #: A pure function of (leaf adjacency, owner map), maintained at the
        #: same sites that mutate ``_adj`` / leaf ownership, so
        #: :meth:`neighbors` is O(degree) instead of a leaf-set rebuild.
        self._nbr_counts: Dict[int, Dict[int, int]] = {}

    # ------------------------------------------------------------------ queries --
    @property
    def size(self) -> int:
        """Number of members, dead-but-unclaimed included."""
        return len(self.members)

    def alive_ids(self) -> List[int]:
        return [m.node_id for m in self.members.values() if m.alive]

    def coordinate(self, node_id: int) -> Tuple[float, ...]:
        return self._member(node_id).coord

    def leaves_of(self, node_id: int) -> List[Leaf]:
        assert self.tree is not None
        return [self.tree.leaves[lid] for lid in self._owner_leaves.get(node_id, ())]

    def zones_of(self, node_id: int) -> List[Zone]:
        return [leaf.zone for leaf in self.leaves_of(node_id)]

    def neighbors(self, node_id: int) -> Set[int]:
        """Ground-truth neighbor ids: owners of leaves abutting any owned leaf."""
        self._member(node_id)
        row = self._nbr_counts.get(node_id)
        return set(row) if row else set()

    def neighborhood_stamp(self, node_id: int) -> int:
        """Monotone counter advancing when this node's neighborhood changes.

        Covers adjacency changes (splits, merges, transfers, drops) *and*
        liveness flips of adjacent owners, so any value derived from
        :meth:`neighbor_set` plus member liveness can be cached against it.
        """
        return self._nbr_stamp.get(node_id, 0)

    def neighbor_set(self, node_id: int) -> frozenset:
        """:meth:`neighbors` as a frozenset, cached per neighborhood stamp.

        The believed-table layer resolves record relevance against this set
        (membership test) instead of pairwise zone abutment scans.
        """
        stamp = self._nbr_stamp.get(node_id, 0)
        cached = self._nbr_sets.get(node_id)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        nset = frozenset(self.neighbors(node_id))
        self._nbr_sets[node_id] = (stamp, nset)
        return nset

    def _touch_nodes(self, node_ids: Iterable[int]) -> None:
        """Advance the neighborhood stamp of every listed node."""
        self._nbr_tick += 1
        tick = self._nbr_tick
        stamp = self._nbr_stamp
        for nid in node_ids:
            stamp[nid] = tick

    def neighbors_along(self, node_id: int, dim: int, direction: int) -> Set[int]:
        """Neighbors reached by crossing a face along ``dim`` toward ``direction``."""
        if direction not in (-1, +1):
            raise ValueError("direction must be +1 or -1")
        return self._directional(node_id).get((dim, direction), set())

    def _directional(self, node_id: int) -> Dict[Tuple[int, int], Set[int]]:
        """Per-node (dim, direction) -> neighbor owners, cached per topology.

        Matchmaking probes every dimension at every push hop and the
        aggregation engine rebuilds its CSR from the same queries; computing
        the shared-face axis once per adjacent leaf pair (instead of once
        per query) is what keeps full-scale runs fast.
        """
        self._member(node_id)
        if self._dir_cache_version != self.topology_version:
            self._dir_cache_version = self.topology_version
            self._dir_cache = {}
        cached = self._dir_cache.get(node_id)
        if cached is not None:
            return cached
        assert self.tree is not None
        out: Dict[Tuple[int, int], Set[int]] = {}
        for lid in self._owner_leaves.get(node_id, ()):
            mine = self.tree.leaves[lid].zone
            for adj_lid in self._adj[lid]:
                other = self.tree.leaves[adj_lid]
                if other.owner == node_id:
                    continue
                key = mine.touch(other.zone)
                out.setdefault(key, set()).add(other.owner)
        self._dir_cache[node_id] = out
        return out

    def locate_leaf(self, point: Sequence[float]) -> Leaf:
        if self.tree is None:
            raise OverlayError("overlay is empty")
        return self.tree.locate(tuple(point))

    def locate_owner(self, point: Sequence[float]) -> int:
        return self.locate_leaf(point).owner

    def is_alive(self, node_id: int) -> bool:
        member = self.members.get(node_id)
        return member is not None and member.alive

    def dead_ids(self) -> Set[int]:
        """Members still holding zones but no longer alive."""
        return {m.node_id for m in self.members.values() if not m.alive}

    def takeover_targets(
        self, node_id: int, dead: Optional[Set[int]] = None
    ) -> Set[int]:
        """Who would claim this node's zones if it vanished right now.

        This is what each node can compute locally from its split history;
        compact heartbeats send full state only to these nodes.  Callers
        sweeping many nodes pass :meth:`dead_ids` once via ``dead`` instead
        of paying the member scan per call.
        """
        assert self.tree is not None
        dead_now = self.dead_ids() if dead is None else dead
        excluded = dead_now | {node_id}
        targets: Set[int] = set()
        for leaf in self.leaves_of(node_id):
            claimant = self.tree.takeover_leaf(leaf, excluded)
            if claimant is not None:
                targets.add(claimant.owner)
        return targets

    # ------------------------------------------------------------------ mutation --
    def add_node(self, node_id: int, coord: Sequence[float]) -> JoinResult:
        """Bootstrap (first member) or join by splitting the containing leaf."""
        coord = tuple(float(c) for c in coord)
        if len(coord) != self.space.dims:
            raise OverlayError(
                f"coordinate has {len(coord)} dims, space has {self.space.dims}"
            )
        if node_id in self.members:
            raise OverlayError(f"node {node_id} already present")
        if self.tree is None:
            self.tree = SplitTree(self.space.full_zone(), node_id)
            root_leaf = next(self.tree.iter_leaves())
            self.members[node_id] = Member(node_id, coord)
            self._owner_leaves[node_id] = {root_leaf.leaf_id}
            self._adj[root_leaf.leaf_id] = set()
            self.topology_version += 1
            self._touch_nodes((node_id,))
            return JoinResult(node_id, None, root_leaf.leaf_id, None, None)

        target = self.tree.locate(coord)
        owner_id = target.owner
        owner = self._member(owner_id)
        if not owner.alive:
            raise OverlayError(
                f"join target leaf owned by dead node {owner_id}; "
                "retry after the zone is claimed"
            )
        owner_coord = owner.coord if target.zone.contains(owner.coord) else None
        dim, at, new_high = self._choose_split(target.zone, coord, owner_coord)
        low_owner, high_owner = (
            (owner_id, node_id) if new_high else (node_id, owner_id)
        )
        low, high = self.tree.split_leaf(target, dim, at, low_owner, high_owner)
        self._split_adjacency(target.leaf_id, owner_id, low, high)
        self._owner_leaves[owner_id].discard(target.leaf_id)
        owner_leaf = low if new_high else high
        self._owner_leaves[owner_id].add(owner_leaf.leaf_id)
        self.members[node_id] = Member(node_id, coord)
        new_leaf = high if new_high else low
        self._owner_leaves[node_id] = {new_leaf.leaf_id}
        self.topology_version += 1
        return JoinResult(node_id, owner_id, new_leaf.leaf_id, dim, at)

    def graceful_leave(self, node_id: int) -> List[Transfer]:
        """Voluntary departure: zones hand off to the take-over nodes at once."""
        member = self._member(node_id)
        if not member.alive:
            raise OverlayError(f"node {node_id} already failed")
        transfers = self._transfer_all(node_id)
        del self.members[node_id]
        self._forget_member(node_id)
        return transfers

    def fail(self, node_id: int) -> None:
        """Silent crash: zones stay registered to the ghost until claimed."""
        member = self._member(node_id)
        if not member.alive:
            raise OverlayError(f"node {node_id} already failed")
        member.alive = False
        self.topology_version += 1
        # liveness is part of what neighbors cache about their neighborhood
        self._touch_nodes({node_id} | self.neighbors(node_id))

    def claim_zones(self, dead_id: int) -> List[Transfer]:
        """Execute the predetermined take-over for a detected failure."""
        member = self._member(dead_id)
        if member.alive:
            raise OverlayError(f"node {dead_id} has not failed")
        transfers = self._transfer_all(dead_id)
        del self.members[dead_id]
        self._forget_member(dead_id)
        return transfers

    def _forget_member(self, node_id: int) -> None:
        """Drop per-node cache state of a departed member (ids never recur)."""
        self._nbr_stamp.pop(node_id, None)
        self._nbr_sets.pop(node_id, None)
        self._nbr_counts.pop(node_id, None)

    def _pair_inc(self, a: int, b: int) -> None:
        """One more adjacent leaf pair owned by (a, b)."""
        if a == b:
            return
        counts = self._nbr_counts
        row = counts.setdefault(a, {})
        row[b] = row.get(b, 0) + 1
        row = counts.setdefault(b, {})
        row[a] = row.get(a, 0) + 1

    def _pair_dec(self, a: int, b: int) -> None:
        """One fewer adjacent leaf pair owned by (a, b)."""
        if a == b:
            return
        counts = self._nbr_counts
        for x, y in ((a, b), (b, a)):
            row = counts[x]
            remaining = row[y] - 1
            if remaining:
                row[y] = remaining
            else:
                del row[y]

    # ------------------------------------------------------------------ internals --
    def _transfer_all(self, node_id: int) -> List[Transfer]:
        assert self.tree is not None
        dead_now = {m.node_id for m in self.members.values() if not m.alive}
        excluded = dead_now | {node_id}
        transfers: List[Transfer] = []
        for lid in list(self._owner_leaves.get(node_id, ())):
            leaf = self.tree.leaves.get(lid)
            if leaf is None or leaf.owner != node_id:
                continue  # already merged away by an earlier transfer
            claimant = self.tree.takeover_leaf(leaf, excluded)
            if claimant is None:
                # Last member standing: the zone simply disappears with it.
                self._drop_leaf(lid)
                continue
            new_owner = claimant.owner
            transfers.append(Transfer(lid, leaf.zone, node_id, new_owner))
            adj_owners = [self.tree.leaves[a].owner for a in self._adj[lid]]
            for adj_owner in adj_owners:
                if adj_owner != node_id:
                    self._pair_dec(node_id, adj_owner)
            self.tree.transfer(leaf, new_owner)
            for adj_owner in adj_owners:
                if adj_owner != new_owner:
                    self._pair_inc(new_owner, adj_owner)
            self._owner_leaves[node_id].discard(lid)
            self._owner_leaves.setdefault(new_owner, set()).add(lid)
            self._touch_nodes(
                {self.tree.leaves[a].owner for a in self._adj[lid]}
                | {node_id, new_owner}
            )
            self._cascade_merges(leaf)
        self._owner_leaves.pop(node_id, None)
        self.topology_version += 1
        return transfers

    def _cascade_merges(self, leaf: Leaf) -> None:
        """Fuse sibling leaves with one owner, repeatedly."""
        assert self.tree is not None
        current = leaf
        while True:
            merged = self.tree.try_merge(current)
            if merged is None:
                return
            removed_a, removed_b, new_leaf = merged
            self._merge_adjacency(removed_a, removed_b, new_leaf)
            owner_set = self._owner_leaves[new_leaf.owner]
            owner_set.discard(removed_a.leaf_id)
            owner_set.discard(removed_b.leaf_id)
            owner_set.add(new_leaf.leaf_id)
            current = new_leaf

    def _drop_leaf(self, leaf_id: int) -> None:
        assert self.tree is not None
        adj = self._adj.pop(leaf_id, set())
        self._touch_nodes({self.tree.leaves[a].owner for a in adj})
        owner = self.tree.leaves[leaf_id].owner
        for a in adj:
            self._adj[a].discard(leaf_id)
            self._pair_dec(owner, self.tree.leaves[a].owner)
        self.tree.leaves.pop(leaf_id, None)

    def _split_adjacency(
        self, old_id: int, old_owner: int, low: Leaf, high: Leaf
    ) -> None:
        assert self.tree is not None
        old_adj = self._adj.pop(old_id)
        low_adj: Set[int] = set()
        high_adj: Set[int] = set()
        for other_id in old_adj:
            self._adj[other_id].discard(old_id)
            other = self.tree.leaves[other_id]
            other_zone = other.zone
            self._pair_dec(old_owner, other.owner)
            if low.zone.abuts(other_zone):
                low_adj.add(other_id)
                self._adj[other_id].add(low.leaf_id)
                self._pair_inc(low.owner, other.owner)
            if high.zone.abuts(other_zone):
                high_adj.add(other_id)
                self._adj[other_id].add(high.leaf_id)
                self._pair_inc(high.owner, other.owner)
        low_adj.add(high.leaf_id)
        high_adj.add(low.leaf_id)
        self._pair_inc(low.owner, high.owner)
        self._adj[low.leaf_id] = low_adj
        self._adj[high.leaf_id] = high_adj
        leaves = self.tree.leaves
        self._touch_nodes(
            {leaves[oid].owner for oid in old_adj} | {low.owner, high.owner}
        )

    def _merge_adjacency(self, a: Leaf, b: Leaf, merged: Leaf) -> None:
        assert self.tree is not None
        leaves = self.tree.leaves
        adj_a = self._adj.pop(a.leaf_id)
        adj_b = self._adj.pop(b.leaf_id)
        for other_id in adj_a:
            if other_id != b.leaf_id:
                self._pair_dec(a.owner, leaves[other_id].owner)
        for other_id in adj_b:
            if other_id != a.leaf_id:
                self._pair_dec(b.owner, leaves[other_id].owner)
        adj = (adj_a | adj_b) - {a.leaf_id, b.leaf_id}
        for other_id in adj:
            self._adj[other_id].discard(a.leaf_id)
            self._adj[other_id].discard(b.leaf_id)
            self._adj[other_id].add(merged.leaf_id)
            self._pair_inc(merged.owner, leaves[other_id].owner)
        self._adj[merged.leaf_id] = adj
        self._touch_nodes(
            {leaves[oid].owner for oid in adj} | {merged.owner}
        )

    @staticmethod
    def _choose_split(
        zone: Zone,
        new_coord: Tuple[float, ...],
        owner_coord: Optional[Tuple[float, ...]],
    ) -> Tuple[int, float, bool]:
        """Pick (dim, position, newcomer-takes-high-half) for a join split.

        When the zone contains the current owner's coordinate (the usual
        case) the split must separate the two coordinates; the virtual
        dimension guarantees some separating dimension exists.  When the
        zone is a secondary zone (owner's coordinate elsewhere) any split
        works; we halve the longest axis.
        """
        if owner_coord is not None:
            separable = [
                d
                for d in range(zone.dims)
                if owner_coord[d] != new_coord[d]
            ]
            if not separable:
                raise OverlayError(
                    "cannot split: joining node's coordinate equals the "
                    "owner's in every dimension (resample the virtual "
                    "coordinate)"
                )
            dim = max(separable, key=zone.extent)
            lo_c = min(owner_coord[dim], new_coord[dim])
            hi_c = max(owner_coord[dim], new_coord[dim])
            mid = (zone.lo[dim] + zone.hi[dim]) / 2.0
            at = mid if lo_c < mid <= hi_c else (lo_c + hi_c) / 2.0
            new_high = new_coord[dim] >= at
            return dim, at, new_high

        dim = max(range(zone.dims), key=zone.extent)
        at = (zone.lo[dim] + zone.hi[dim]) / 2.0
        if new_coord[dim] == at:
            at = (zone.lo[dim] + at) / 2.0
        return dim, at, new_coord[dim] >= at

    def _member(self, node_id: int) -> Member:
        member = self.members.get(node_id)
        if member is None:
            raise OverlayError(f"unknown node {node_id}")
        return member

    # ------------------------------------------------------------------ invariants --
    def check_invariants(self) -> None:
        """Partitioning + adjacency symmetry + ownership consistency.

        Used by tests and property-based checks; O(leaves * avg-degree).
        """
        if self.tree is None:
            return
        self.tree.check_partition()
        for lid, adj in self._adj.items():
            leaf = self.tree.leaves[lid]
            for other_id in adj:
                other = self.tree.leaves[other_id]
                if not leaf.zone.abuts(other.zone):
                    raise AssertionError(
                        f"adjacency lists non-abutting leaves {lid},{other_id}"
                    )
                if lid not in self._adj[other_id]:
                    raise AssertionError(f"asymmetric adjacency {lid}->{other_id}")
        for node_id, lids in self._owner_leaves.items():
            for lid in lids:
                if self.tree.leaves[lid].owner != node_id:
                    raise AssertionError(
                        f"owner map desync: leaf {lid} not owned by {node_id}"
                    )
        owned = {lid for lids in self._owner_leaves.values() for lid in lids}
        if owned != set(self.tree.leaves):
            raise AssertionError("owner map does not cover all leaves")
        expect: Dict[int, Dict[int, int]] = {}
        for lid, adj in self._adj.items():
            owner = self.tree.leaves[lid].owner
            for other_id in adj:
                other_owner = self.tree.leaves[other_id].owner
                if other_owner != owner:
                    row = expect.setdefault(owner, {})
                    row[other_owner] = row.get(other_owner, 0) + 1
        counts = {k: v for k, v in self._nbr_counts.items() if v}
        if counts != expect:
            raise AssertionError("neighbor-pair counters desynced from adjacency")
