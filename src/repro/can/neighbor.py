"""Believed neighbor tables — each node's *local view* of the CAN.

Ground truth lives in :class:`repro.can.overlay.CanOverlay`; what a node
*believes* about its surroundings lives here and is updated exclusively by
protocol messages.  The divergence between the two is the failure-resilience
metric of the paper: a ground-truth neighbor absent from the believed table
is a **broken link**.

Every record carries *freshness*: when it travels in a full-table message it
is accompanied by the sender's ``last_heard`` timestamp for that node, and
the receiver adopts it (never moving its own estimate backwards).  This
keeps gossip honest about liveness: a dead node's records age uniformly
across all believers and expire everywhere within one failure timeout —
without it, two nodes can resurrect a dead entry in each other's tables
forever, inflating vanilla-CAN tables and masking failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .geometry import Zone

__all__ = ["BeliefRecord", "NeighborTable", "TableSnapshot"]


@dataclass(frozen=True)
class BeliefRecord:
    """Immutable snapshot of one node's advertised state.

    ``version`` increases whenever the node's zone set changes, so stale
    records lose against fresh ones during merges.
    """

    node_id: int
    version: int
    zones: Tuple[Zone, ...]
    coord: Tuple[float, ...]

    def abuts_any(self, zones: Iterable[Zone]) -> bool:
        return any(z.abuts(other) for other in zones for z in self.zones)

    @property
    def zone_count(self) -> int:
        return len(self.zones)


#: what travels in full-table messages: record + sender's last_heard of it
TableSnapshot = Dict[int, Tuple[BeliefRecord, float]]


class NeighborTable:
    """A node's believed neighbor set with freshness bookkeeping.

    ``freshness_ttl`` is the failure timeout: gossiped records whose
    advertised last-heard time lies further in the past are ignored (their
    subject would be declared failed immediately anyway).
    """

    def __init__(self, freshness_ttl: float = float("inf")) -> None:
        self._records: Dict[int, BeliefRecord] = {}
        self._last_heard: Dict[int, float] = {}
        #: per-record change sequence (epoch at last insert/update), so
        #: receivers can merge only the delta since their last merge
        self._record_seq: Dict[int, int] = {}
        self.freshness_ttl = freshness_ttl
        #: bumped on any membership or record change — lets receivers skip
        #: re-merging a full table they have already processed
        self.epoch: int = 0
        #: bumped only on removals — the one local change that can make an
        #: *unchanged* remote table worth re-merging (it may re-add what we
        #: dropped); inserts and updates cannot, so they must not invalidate
        #: every neighbor's merge cache
        self.removals_epoch: int = 0
        #: zones of recently removed (suspected-failed) neighbors, kept for
        #: a grace period so the coverage detector does not panic about a
        #: vacated zone whose take-over is already in flight
        self._recent_removals: Dict[int, Tuple[Tuple[Zone, ...], float]] = {}
        self._snap_cache: Optional[TableSnapshot] = None
        self._snap_dirty: bool = True

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._records

    def ids(self) -> Set[int]:
        return set(self._records)

    def records(self) -> List[BeliefRecord]:
        return list(self._records.values())

    def get(self, node_id: int) -> Optional[BeliefRecord]:
        return self._records.get(node_id)

    def snapshot(self) -> TableSnapshot:
        """The table with freshness, as shipped in full-table messages.

        Cached per (epoch, freshness change): with many receivers per
        sender the same immutable snapshot is shared.  Callers must treat
        it as read-only.
        """
        if self._snap_cache is None or self._snap_dirty:
            self._snap_cache = {
                nid: (rec, self._last_heard.get(nid, float("-inf")))
                for nid, rec in self._records.items()
            }
            self._snap_dirty = False
        return self._snap_cache

    def advance_freshness(self, node_id: int, evidence: Optional[float]) -> None:
        """Move a neighbor's liveness evidence forward (never backwards)."""
        if evidence is None or node_id not in self._records:
            return
        if evidence > self._last_heard.get(node_id, float("-inf")):
            self._last_heard[node_id] = evidence
            self._snap_dirty = True

    # -- updates ------------------------------------------------------------------
    def upsert(
        self,
        record: BeliefRecord,
        now: float,
        heard: bool = False,
        heard_at: Optional[float] = None,
    ) -> bool:
        """Insert or refresh a record; returns True when anything changed.

        ``heard=True`` marks direct contact with the subject (a heartbeat
        from it): freshness becomes ``now``.  Otherwise ``heard_at`` is the
        gossip sender's advertised last-heard time; stale gossip (older than
        ``freshness_ttl``) cannot insert new entries, and freshness only
        ever moves forward.  An existing entry is only overwritten by an
        equal-or-newer version — gossip cannot roll state backwards.
        """
        evidence = now if heard else (heard_at if heard_at is not None else now)
        current = self._records.get(record.node_id)
        if current is None:
            if not heard and now - evidence > self.freshness_ttl:
                return False  # too stale to (re-)introduce
            self._records[record.node_id] = record
            self._last_heard[record.node_id] = evidence
            self.epoch += 1
            self._record_seq[record.node_id] = self.epoch
            self._snap_dirty = True
            return True
        prev = self._last_heard.get(record.node_id, float("-inf"))
        if evidence > prev:
            self._last_heard[record.node_id] = evidence
            self._snap_dirty = True
        if current.version > record.version or current == record:
            return False
        self._records[record.node_id] = record
        self.epoch += 1
        self._record_seq[record.node_id] = self.epoch
        self._snap_dirty = True
        return True

    def touch(self, node_id: int, now: float) -> None:
        """Record direct contact without new content."""
        if node_id in self._records and now > self._last_heard.get(node_id, -1e30):
            self._last_heard[node_id] = now
            self._snap_dirty = True

    def remove(self, node_id: int, now: Optional[float] = None) -> bool:
        """Drop an entry; with ``now``, remember its zones for a grace period
        (used when removing a *suspected-failed* neighbor whose zone will be
        claimed shortly)."""
        record = self._records.pop(node_id, None)
        if record is None:
            return False
        if now is not None:
            self._recent_removals[node_id] = (record.zones, now)
        self._last_heard.pop(node_id, None)
        self._record_seq.pop(node_id, None)
        self.epoch += 1
        self.removals_epoch += 1
        self._snap_dirty = True
        return True

    def records_since(self, epoch: int) -> List[Tuple[BeliefRecord, float]]:
        """(record, last_heard) pairs inserted or updated after ``epoch``.

        The delta a receiver needs when it already merged this table at
        ``epoch`` and nothing changed on its own side.
        """
        return [
            (self._records[nid], self._last_heard.get(nid, float("-inf")))
            for nid, seq in self._record_seq.items()
            if seq > epoch
        ]

    def grace_zones(self, now: float, grace: float) -> List[Zone]:
        """Zones of neighbors removed within the last ``grace`` seconds."""
        expired = [
            nid
            for nid, (_, t) in self._recent_removals.items()
            if now - t > grace
        ]
        for nid in expired:
            del self._recent_removals[nid]
        return [
            z
            for zones, _ in self._recent_removals.values()
            for z in zones
        ]

    def last_heard(self, node_id: int) -> float:
        return self._last_heard.get(node_id, float("-inf"))

    def stale_ids(self, now: float, timeout: float) -> List[int]:
        """Neighbors not heard from within ``timeout`` (failure suspects)."""
        return [
            nid
            for nid, t in self._last_heard.items()
            if now - t > timeout and nid in self._records
        ]

    def prune_non_abutting(self, own_zones: List[Zone]) -> List[int]:
        """Drop believed neighbors whose zones no longer touch ours.

        Called when our own zone set changes (split away, merged) and when a
        neighbor advertises a moved zone.
        """
        gone = [
            nid
            for nid, rec in self._records.items()
            if not rec.abuts_any(own_zones)
        ]
        for nid in gone:
            self.remove(nid)
        return gone
