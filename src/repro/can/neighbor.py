"""Believed neighbor tables — each node's *local view* of the CAN.

Ground truth lives in :class:`repro.can.overlay.CanOverlay`; what a node
*believes* about its surroundings lives here and is updated exclusively by
protocol messages.  The divergence between the two is the failure-resilience
metric of the paper: a ground-truth neighbor absent from the believed table
is a **broken link**.

Every record carries *freshness*: when it travels in a full-table message it
is accompanied by the sender's ``last_heard`` timestamp for that node, and
the receiver adopts it (never moving its own estimate backwards).  This
keeps gossip honest about liveness: a dead node's records age uniformly
across all believers and expire everywhere within one failure timeout —
without it, two nodes can resurrect a dead entry in each other's tables
forever, inflating vanilla-CAN tables and masking failures.

Snapshots are copy-on-write: :meth:`NeighborTable.snapshot` hands out one
shared :class:`TableSnapshot` per unchanged table state, and the table
clones the underlying dict only when the *next* mutation arrives.  A full
heartbeat re-sent to many receivers therefore costs O(1) per receiver, and
a round that only advances freshness clones one dict instead of rebuilding
``(record, heard)`` tuples for every entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .geometry import Zone

__all__ = ["BeliefRecord", "NeighborTable", "TableSnapshot"]

_NEG_INF = float("-inf")


@dataclass(frozen=True)
class BeliefRecord:
    """Immutable snapshot of one node's advertised state.

    ``version`` increases whenever the node's zone set changes, so stale
    records lose against fresh ones during merges.
    """

    node_id: int
    version: int
    zones: Tuple[Zone, ...]
    coord: Tuple[float, ...]

    def abuts_any(self, zones: Iterable[Zone]) -> bool:
        return any(z.abuts(other) for other in zones for z in self.zones)

    @property
    def zone_count(self) -> int:
        return len(self.zones)


class TableSnapshot:
    """What travels in full-table messages: records + sender freshness.

    Immutable by contract: the owning :class:`NeighborTable` clones its
    live dicts before mutating them while a snapshot references them, so a
    handed-out snapshot keeps the table state at capture time.  ``records``
    maps node id to :class:`BeliefRecord`; ``heard`` maps node id to the
    sender's ``last_heard`` evidence; ``total_zones`` is the wire-size
    accounting total ``sum(max(record.zone_count, 1))`` over the records.
    """

    __slots__ = ("records", "heard", "total_zones")

    def __init__(
        self,
        records: Dict[int, BeliefRecord],
        heard: Dict[int, float],
        total_zones: int,
    ):
        self.records = records
        self.heard = heard
        self.total_zones = total_zones

    def __len__(self) -> int:
        return len(self.records)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.records

    def __iter__(self) -> Iterator[int]:
        return iter(self.records)

    def __getitem__(self, node_id: int) -> Tuple[BeliefRecord, float]:
        return self.records[node_id], self.heard.get(node_id, _NEG_INF)

    def get(
        self, node_id: int, default=None
    ) -> Optional[Tuple[BeliefRecord, float]]:
        rec = self.records.get(node_id)
        if rec is None:
            return default
        return rec, self.heard.get(node_id, _NEG_INF)

    def pairs(self) -> Iterator[Tuple[BeliefRecord, float]]:
        """(record, last_heard) pairs — the full-table message payload."""
        heard_get = self.heard.get
        for nid, rec in self.records.items():
            yield rec, heard_get(nid, _NEG_INF)

    # dict-of-pairs compatibility -------------------------------------------------
    def values(self) -> Iterator[Tuple[BeliefRecord, float]]:
        return self.pairs()

    def items(self) -> Iterator[Tuple[int, Tuple[BeliefRecord, float]]]:
        heard_get = self.heard.get
        for nid, rec in self.records.items():
            yield nid, (rec, heard_get(nid, _NEG_INF))

    def keys(self) -> Iterator[int]:
        return iter(self.records)


#: shared empty payload for claims where no stored table was known
EMPTY_SNAPSHOT = TableSnapshot({}, {}, 0)


class NeighborTable:
    """A node's believed neighbor set with freshness bookkeeping.

    ``freshness_ttl`` is the failure timeout: gossiped records whose
    advertised last-heard time lies further in the past are ignored (their
    subject would be declared failed immediately anyway).
    """

    def __init__(self, freshness_ttl: float = float("inf")) -> None:
        self._records: Dict[int, BeliefRecord] = {}
        self._last_heard: Dict[int, float] = {}
        #: per-record change sequence (epoch at last insert/update), so
        #: receivers can merge only the delta since their last merge
        self._record_seq: Dict[int, int] = {}
        self.freshness_ttl = freshness_ttl
        #: bumped on any membership or record change — lets receivers skip
        #: re-merging a full table they have already processed
        self.epoch: int = 0
        #: bumped only on removals — the one local change that can make an
        #: *unchanged* remote table worth re-merging (it may re-add what we
        #: dropped); inserts and updates cannot, so they must not invalidate
        #: every neighbor's merge cache
        self.removals_epoch: int = 0
        #: zones of recently removed (suspected-failed) neighbors, kept for
        #: a grace period so the coverage detector does not panic about a
        #: vacated zone whose take-over is already in flight
        self._recent_removals: Dict[int, Tuple[Tuple[Zone, ...], float]] = {}
        #: wire-size accounting: sum(max(zone_count, 1)) over all records
        self._total_zones: int = 0
        self._snap_cache: Optional[TableSnapshot] = None
        #: live dicts currently referenced by a handed-out snapshot —
        #: cloned (copy-on-write) by the next mutation touching them
        self._records_shared: bool = False
        self._heard_shared: bool = False
        self._sorted_ids: List[int] = []
        self._sorted_epoch: int = -1

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._records

    def ids(self) -> Set[int]:
        return set(self._records)

    def ids_view(self):
        """Live key view of the believed ids (read-only, no copy)."""
        return self._records.keys()

    def sorted_ids(self) -> List[int]:
        """Believed ids in ascending order, cached per table epoch.

        Callers must treat the returned list as read-only; a table change
        produces a fresh list rather than mutating the old one.
        """
        if self._sorted_epoch != self.epoch:
            self._sorted_ids = sorted(self._records)
            self._sorted_epoch = self.epoch
        return self._sorted_ids

    def records(self) -> List[BeliefRecord]:
        return list(self._records.values())

    def get(self, node_id: int) -> Optional[BeliefRecord]:
        return self._records.get(node_id)

    def total_zones(self) -> int:
        """``sum(max(record.zone_count, 1))``, maintained incrementally."""
        return self._total_zones

    def snapshot(self) -> TableSnapshot:
        """The table with freshness, as shipped in full-table messages.

        O(1) while the table is unchanged: the same immutable snapshot is
        shared across every receiver of an unchanged re-send, and the next
        mutation clones only the dict it touches.  Callers must treat the
        snapshot as read-only.
        """
        snap = self._snap_cache
        if snap is None:
            snap = TableSnapshot(
                self._records, self._last_heard, self._total_zones
            )
            self._snap_cache = snap
            self._records_shared = True
            self._heard_shared = True
        return snap

    # -- copy-on-write plumbing ---------------------------------------------------
    def _own_records(self) -> None:
        """Detach live record dict from any handed-out snapshot."""
        if self._records_shared:
            self._records = dict(self._records)
            self._records_shared = False
        self._snap_cache = None

    def _own_heard(self) -> None:
        """Detach live freshness dict from any handed-out snapshot."""
        if self._heard_shared:
            self._last_heard = dict(self._last_heard)
            self._heard_shared = False
        self._snap_cache = None

    def advance_freshness(self, node_id: int, evidence: Optional[float]) -> None:
        """Move a neighbor's liveness evidence forward (never backwards)."""
        if evidence is None or node_id not in self._records:
            return
        if evidence > self._last_heard.get(node_id, _NEG_INF):
            self._own_heard()
            self._last_heard[node_id] = evidence

    # -- updates ------------------------------------------------------------------
    def upsert(
        self,
        record: BeliefRecord,
        now: float,
        heard: bool = False,
        heard_at: Optional[float] = None,
    ) -> bool:
        """Insert or refresh a record; returns True when anything changed.

        ``heard=True`` marks direct contact with the subject (a heartbeat
        from it): freshness becomes ``now``.  Otherwise ``heard_at`` is the
        gossip sender's advertised last-heard time; stale gossip (older than
        ``freshness_ttl``) cannot insert new entries, and freshness only
        ever moves forward.  An existing entry is only overwritten by an
        equal-or-newer version — gossip cannot roll state backwards.
        """
        evidence = now if heard else (heard_at if heard_at is not None else now)
        current = self._records.get(record.node_id)
        if current is None:
            if not heard and now - evidence > self.freshness_ttl:
                return False  # too stale to (re-)introduce
            self._own_records()
            self._own_heard()
            self._records[record.node_id] = record
            self._last_heard[record.node_id] = evidence
            self._total_zones += max(len(record.zones), 1)
            self.epoch += 1
            self._record_seq[record.node_id] = self.epoch
            return True
        if evidence > self._last_heard.get(record.node_id, _NEG_INF):
            self._own_heard()
            self._last_heard[record.node_id] = evidence
        if current.version > record.version or current == record:
            return False
        self._own_records()
        self._records[record.node_id] = record
        self._total_zones += max(len(record.zones), 1) - max(
            len(current.zones), 1
        )
        self.epoch += 1
        self._record_seq[record.node_id] = self.epoch
        return True

    def heard_from(self, record: BeliefRecord, now: float) -> bool:
        """Direct-heartbeat fast path for an already-known record.

        Equivalent to the non-structural branch of a ``heard=True`` merge:
        when ``record`` is the same or an older version of what we believe,
        advance liveness evidence to ``now`` and return True.  Returns
        False when the record is new or newer — the caller must run the
        full merge path.
        """
        current = self._records.get(record.node_id)
        if current is None or record.version > current.version:
            return False
        if now > self._last_heard.get(record.node_id, _NEG_INF):
            self._own_heard()
            self._last_heard[record.node_id] = now
        return True

    def touch(self, node_id: int, now: float) -> None:
        """Record direct contact without new content."""
        if node_id in self._records and now > self._last_heard.get(node_id, -1e30):
            self._own_heard()
            self._last_heard[node_id] = now

    def remove(self, node_id: int, now: Optional[float] = None) -> bool:
        """Drop an entry; with ``now``, remember its zones for a grace period
        (used when removing a *suspected-failed* neighbor whose zone will be
        claimed shortly)."""
        record = self._records.get(node_id)
        if record is None:
            return False
        self._own_records()
        self._own_heard()
        del self._records[node_id]
        if now is not None:
            self._recent_removals[node_id] = (record.zones, now)
        self._last_heard.pop(node_id, None)
        self._record_seq.pop(node_id, None)
        self._total_zones -= max(len(record.zones), 1)
        self.epoch += 1
        self.removals_epoch += 1
        return True

    def records_since(self, epoch: int) -> List[Tuple[BeliefRecord, float]]:
        """(record, last_heard) pairs inserted or updated after ``epoch``.

        The delta a receiver needs when it already merged this table at
        ``epoch`` and nothing changed on its own side.
        """
        return [
            (self._records[nid], self._last_heard.get(nid, _NEG_INF))
            for nid, seq in self._record_seq.items()
            if seq > epoch
        ]

    def grace_zones(self, now: float, grace: float) -> List[Zone]:
        """Zones of neighbors removed within the last ``grace`` seconds."""
        expired = [
            nid
            for nid, (_, t) in self._recent_removals.items()
            if now - t > grace
        ]
        for nid in expired:
            del self._recent_removals[nid]
        return [
            z
            for zones, _ in self._recent_removals.values()
            for z in zones
        ]

    def last_heard(self, node_id: int) -> float:
        return self._last_heard.get(node_id, _NEG_INF)

    def stale_ids(self, now: float, timeout: float) -> List[int]:
        """Neighbors not heard from within ``timeout`` (failure suspects)."""
        return [
            nid
            for nid, t in self._last_heard.items()
            if now - t > timeout and nid in self._records
        ]

    def prune_non_abutting(self, own_zones: List[Zone]) -> List[int]:
        """Drop believed neighbors whose zones no longer touch ours.

        Called when our own zone set changes (split away, merged) and when a
        neighbor advertises a moved zone.
        """
        gone = [
            nid
            for nid, rec in self._records.items()
            if not rec.abuts_any(own_zones)
        ]
        for nid in gone:
            self.remove(nid)
        return gone
