"""Per-dimension directional load aggregation (paper, Sections II-B, III-B).

Nodes piggyback aggregated load information on heartbeats: each node
advertises, for every CAN dimension, a summary of the load in the region
*beyond* it (toward higher coordinates — the direction jobs get pushed).
The summary a node advertises along dimension ``D`` combines its own load
with the summaries it last received from its ``+D``-side neighbors, so
information propagates hop by hop, one heartbeat period per hop — exactly
why the paper calls the data "periodically updated" and approximate.

Each dimension's summary carries only the CE slot that owns the dimension
(``gpu0.clock`` carries the ``gpu0`` load) plus two node-level counters.
That keeps the piggyback O(1) per dimension / O(d) per heartbeat, matching
the compact-heartbeat cost analysis.  Fields:

====  =====================  ==========================================
idx   field                  meaning
====  =====================  ==========================================
0     num_nodes              nodes summarised (corridor length)
1     num_free               free nodes among them
2     slot_required_cores    Σ required cores on the dimension's slot
3     slot_cores             Σ cores on the dimension's slot
4     slot_queue_jobs        Σ queued+running jobs on the slot
5     slot_idle              count of idle CEs of the slot
6     pool_required_cores    Σ required cores over *all* CEs (can-hom)
7     pool_cores             Σ cores over all CEs (can-hom)
====  =====================  ==========================================

The combination rule adds the node's own record to the element-wise *mean*
of its out-neighbors' summaries: summing would double-count overlapping
regions reachable through several neighbors, while the mean keeps
``num_nodes`` close to the corridor length — the same flavour of controlled
approximation the original system used.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..model.node import GridNode
from .overlay import CanOverlay
from .space import ResourceSpace

__all__ = ["AggregationEngine", "FIELDS"]

FIELDS = (
    "num_nodes",
    "num_free",
    "slot_required_cores",
    "slot_cores",
    "slot_queue_jobs",
    "slot_idle",
    "pool_required_cores",
    "pool_cores",
)
NF = len(FIELDS)


class AggregationEngine:
    """Vectorised hop-by-hop aggregation over a (momentarily) static CAN."""

    def __init__(
        self,
        overlay: CanOverlay,
        grid_nodes: Dict[int, GridNode],
    ):
        self.overlay = overlay
        self.space: ResourceSpace = overlay.space
        self.grid_nodes = grid_nodes
        self._topology_version = -1
        self._ids: List[int] = []
        self._index: Dict[int, int] = {}
        # CSR out-neighbor structure per dimension: flat index array +
        # row offsets, built lazily from the overlay.
        self._csr: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._ai: Optional[np.ndarray] = None  # (D, N, NF)
        self.rounds_run = 0

    # -- topology ------------------------------------------------------------------
    def is_stale(self) -> bool:
        """Has the overlay changed since the last aggregation step?

        A stale engine still answers queries, but its directional
        summaries describe the pre-churn topology (and propagated state is
        reset on the next step).  The recovery layer keys its degraded
        expanding-ring fallback on this: a failed placement while stale
        says little about whether capable nodes exist.
        """
        return self._topology_version != self.overlay.topology_version

    def _ensure_topology(self) -> None:
        if self._topology_version == self.overlay.topology_version:
            return
        self._topology_version = self.overlay.topology_version
        self._ids = sorted(self.overlay.alive_ids())
        self._index = {nid: i for i, nid in enumerate(self._ids)}
        dims = self.space.dims
        n = len(self._ids)
        buckets: List[List[List[int]]] = [
            [[] for _ in range(n)] for _ in range(dims)
        ]
        for nid in self._ids:
            i = self._index[nid]
            for dim in range(dims):
                for other in self.overlay.neighbors_along(nid, dim, +1):
                    j = self._index.get(other)
                    if j is not None:
                        buckets[dim][i].append(j)
        self._csr = []
        for dim in range(dims):
            flat: List[int] = []
            rows: List[int] = []
            counts = np.zeros(n, dtype=np.float64)
            for i in range(n):
                out = buckets[dim][i]
                flat.extend(out)
                rows.extend([i] * len(out))
                counts[i] = len(out)
            self._csr.append(
                (
                    np.asarray(flat, dtype=np.int64),
                    np.asarray(rows, dtype=np.int64),
                    counts,
                )
            )
        old = self._ai
        self._ai = np.zeros((dims, n, NF))
        # A topology change resets the propagated state; it re-converges in
        # a few rounds, as it would in the real system.
        if old is None:
            self._seed_own()

    def _seed_own(self) -> None:
        assert self._ai is not None
        self._ai[:] = self._own_records()

    # -- own load records -------------------------------------------------------------
    def _own_records(self) -> np.ndarray:
        """(D, N, NF) array of every node's own contribution per dimension."""
        dims = self.space.dims
        n = len(self._ids)
        own = np.zeros((dims, n, NF))
        pool_required = np.zeros(n)
        pool_cores = np.zeros(n)
        free = np.zeros(n)
        slot_stats: Dict[str, np.ndarray] = {
            slot: np.zeros((n, 4)) for slot in self.space.slots()
        }
        for nid in self._ids:
            i = self._index[nid]
            gnode = self.grid_nodes.get(nid)
            if gnode is None:
                continue
            free[i] = 1.0 if gnode.is_free() else 0.0
            for slot, ce in gnode.ces.items():
                stats = slot_stats.get(slot)
                req = float(ce.required_cores())
                cores = float(ce.spec.cores)
                if stats is not None:
                    stats[i, 0] = req
                    stats[i, 1] = cores
                    stats[i, 2] = float(ce.job_queue_size)
                    stats[i, 3] = 1.0 if ce.idle else 0.0
                pool_required[i] += req
                pool_cores[i] += cores
        for dim_obj in self.space.dimensions:
            d = dim_obj.index
            own[d, :, 0] = 1.0
            own[d, :, 1] = free
            if not dim_obj.is_virtual:
                stats = slot_stats[dim_obj.slot]
                own[d, :, 2:6] = stats
            own[d, :, 6] = pool_required
            own[d, :, 7] = pool_cores
        return own

    # -- propagation --------------------------------------------------------------------
    def step(self) -> None:
        """One heartbeat round of aggregation propagation."""
        self._ensure_topology()
        assert self._ai is not None
        own = self._own_records()
        dims = self.space.dims
        new = np.empty_like(self._ai)
        for d in range(dims):
            flat, rows, counts = self._csr[d]
            if flat.size == 0:
                new[d] = own[d]
                continue
            gathered = self._ai[d][flat]  # (E, NF)
            sums = np.zeros_like(own[d])
            np.add.at(sums, rows, gathered)
            safe_counts = np.where(counts == 0, 1.0, counts)
            new[d] = own[d] + sums / safe_counts[:, None]
        self._ai = new
        self.rounds_run += 1

    def run_rounds(self, k: int) -> None:
        for _ in range(k):
            self.step()

    # -- queries --------------------------------------------------------------------------
    def advertised(self, node_id: int, dim: int) -> np.ndarray:
        """The aggregate ``node_id`` currently advertises along ``dim``.

        This is what a *neighbor* of the node would know from the last
        heartbeat — Equation 3's ``AI_D(N, C)`` and Equation 4's
        ``AI_TD(N)``.
        """
        self._ensure_topology()
        assert self._ai is not None
        i = self._index.get(node_id)
        if i is None:
            raise KeyError(f"node {node_id} not in aggregation index")
        return self._ai[dim, i]

    def field(self, node_id: int, dim: int, name: str) -> float:
        return float(self.advertised(node_id, dim)[FIELDS.index(name)])
