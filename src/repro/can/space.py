"""Mapping grid resources onto CAN coordinate dimensions.

Each CE slot contributes a fixed group of dimensions (paper, Section III-A):

* the CPU slot: clock speed, memory size, disk space, number of cores;
* each GPU slot: clock speed, GPU memory, number of GPU cores;
* plus one random *virtual* dimension that spreads otherwise-identical
  nodes apart (Section II-B).

So 0/1/2/3 GPU slots yield the paper's 5/8/11/14-dimensional CANs.  Raw
resource values are normalised into [0, 1] per dimension so the geometry is
well-conditioned; the normalisation bounds come from the workload
configuration.  Nodes lacking a GPU slot sit at coordinate 0 in that slot's
dimensions, and a job that leaves an attribute unspecified targets 0 there —
"any amount is acceptable".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..model.ce import CPU_SLOT, gpu_slot
from ..model.job import Job
from ..model.node import NodeSpec
from .geometry import Zone

__all__ = ["Dimension", "ResourceSpace"]

#: attribute groups per slot kind
CPU_ATTRS: Tuple[str, ...] = ("clock", "memory", "disk", "cores")
GPU_ATTRS: Tuple[str, ...] = ("clock", "memory", "cores")
VIRTUAL = "virtual"


@dataclass(frozen=True)
class Dimension:
    """One CAN axis: a (slot, attribute) pair with a normalisation bound."""

    index: int
    slot: str  # "" for the virtual dimension
    attribute: str
    upper: float  # raw values are clipped into [0, upper] then scaled to [0, 1]

    def __post_init__(self) -> None:
        if self.upper <= 0:
            raise ValueError(f"upper bound must be positive (dim {self.index})")

    @property
    def is_virtual(self) -> bool:
        return self.attribute == VIRTUAL

    def normalise(self, raw: float) -> float:
        if raw < 0:
            raise ValueError(f"negative resource value {raw} for {self}")
        return min(raw, self.upper) / self.upper

    def label(self) -> str:
        return VIRTUAL if self.is_virtual else f"{self.slot}.{self.attribute}"


#: default normalisation upper bounds per attribute (raw units)
DEFAULT_BOUNDS: Mapping[str, float] = {
    "clock": 4.0,  # relative to nominal 1.0
    "memory": 64.0,  # GB
    "disk": 2048.0,  # GB
    "cores": 1024.0,  # GPU core counts dominate
}


class ResourceSpace:
    """The d-dimensional CAN coordinate system for a given slot layout."""

    def __init__(
        self,
        gpu_slots: int = 2,
        bounds: Optional[Mapping[str, float]] = None,
        cpu_core_bound: float = 16.0,
    ):
        if gpu_slots < 0:
            raise ValueError("gpu_slots must be >= 0")
        merged = dict(DEFAULT_BOUNDS)
        if bounds:
            merged.update(bounds)
        self.gpu_slots = gpu_slots
        dims: List[Dimension] = []
        for attr in CPU_ATTRS:
            upper = cpu_core_bound if attr == "cores" else merged[attr]
            dims.append(Dimension(len(dims), CPU_SLOT, attr, upper))
        for g in range(gpu_slots):
            for attr in GPU_ATTRS:
                dims.append(Dimension(len(dims), gpu_slot(g), attr, merged[attr]))
        dims.append(Dimension(len(dims), "", VIRTUAL, 1.0))
        self.dimensions: Tuple[Dimension, ...] = tuple(dims)
        self._by_label: Dict[str, Dimension] = {d.label(): d for d in dims}

    @property
    def dims(self) -> int:
        """Total CAN dimensionality (paper's *d*; 5, 8, 11, 14, ...)."""
        return len(self.dimensions)

    @property
    def virtual_index(self) -> int:
        return self.dims - 1

    def dimension(self, label: str) -> Dimension:
        return self._by_label[label]

    def slots(self) -> Tuple[str, ...]:
        """All CE slots this space can represent, CPU first."""
        return (CPU_SLOT,) + tuple(gpu_slot(g) for g in range(self.gpu_slots))

    # -- coordinate construction -----------------------------------------------------
    def full_zone(self) -> Zone:
        return Zone([0.0] * self.dims, [1.0] * self.dims)

    def node_coordinate(
        self, spec: NodeSpec, virtual: float
    ) -> Tuple[float, ...]:
        """Coordinate of a node: its capability along every dimension."""
        if not 0.0 <= virtual < 1.0:
            raise ValueError("virtual coordinate must be in [0, 1)")
        coord: List[float] = []
        for dim in self.dimensions:
            if dim.is_virtual:
                coord.append(virtual)
                continue
            ce = spec.ce_spec(dim.slot)
            if ce is None:
                coord.append(0.0)
            else:
                coord.append(self._clamp(dim.normalise(ce.attribute(dim.attribute))))
        return tuple(coord)

    def job_coordinate(self, job: Job, virtual: float) -> Tuple[float, ...]:
        """Routing target of a job: its minimum requirement per dimension.

        Unspecified attributes map to 0 ("any amount acceptable"), so the
        zone containing the coordinate is the minimal satisfying corner and
        everything farther from the origin also satisfies (Section II-B).
        """
        if not 0.0 <= virtual < 1.0:
            raise ValueError("virtual coordinate must be in [0, 1)")
        coord: List[float] = []
        for dim in self.dimensions:
            if dim.is_virtual:
                coord.append(virtual)
                continue
            req = job.requirements.get(dim.slot)
            if req is None:
                coord.append(0.0)
                continue
            raw = {
                "clock": req.clock,
                "memory": req.memory,
                "disk": req.disk,
                "cores": float(req.cores) if req.cores > 1 else 0.0,
            }[dim.attribute]
            coord.append(self._clamp(dim.normalise(raw)))
        return tuple(coord)

    @staticmethod
    def _clamp(x: float) -> float:
        # Zones are half-open; keep coordinates strictly inside [0, 1).
        return min(x, 1.0 - 1e-9)

    def clamp_point(self, point: Sequence[float]) -> Tuple[float, ...]:
        """Pull an arbitrary unit-cube point into the space's valid interior.

        Zones are half-open (``lo <= x < hi``), so a coordinate of exactly
        1.0 belongs to no zone.  Probes sampled over the full unit cube go
        through here rather than pre-shrinking the sample range — the
        outermost sliver of every dimension must stay reachable.
        """
        return tuple(self._clamp(float(x)) for x in point)

    def labels(self) -> Tuple[str, ...]:
        return tuple(d.label() for d in self.dimensions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResourceSpace(d={self.dims}, gpu_slots={self.gpu_slots})"
