"""Per-node messaging-cost accounting for the scalability experiments.

Figure 8 reports the *average number of messages per node per minute* and
the *average message volume (KB) per node per minute*.  The protocol engine
reports every send here; :meth:`MessageStats.rates` converts the totals into
the paper's per-node-per-minute averages over a measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .messages import MessageType

__all__ = ["MessageStats", "RateSummary"]


@dataclass(frozen=True)
class RateSummary:
    """Per-node-per-minute messaging averages over a window."""

    messages_per_node_minute: float
    kbytes_per_node_minute: float
    window_seconds: float
    node_minutes: float
    by_type: Dict[str, float]  # message counts per node-minute, per type


class MessageStats:
    """Accumulates message counts and byte volumes per message type."""

    def __init__(self) -> None:
        self.count: Dict[MessageType, int] = {t: 0 for t in MessageType}
        self.bytes: Dict[MessageType, int] = {t: 0 for t in MessageType}
        #: integral of (alive node count) dt, to normalise per node
        self._node_seconds: float = 0.0
        self._last_time: float = 0.0
        self._last_nodes: int = 0
        self._window_start: float = 0.0
        self._started: bool = False

    # -- recording --------------------------------------------------------------
    def record(self, mtype: MessageType, size_bytes: int, copies: int = 1) -> None:
        """Count ``copies`` identical messages of ``size_bytes`` each."""
        if copies < 0 or size_bytes < 0:
            raise ValueError("negative message accounting")
        if copies:
            self.count[mtype] += copies
            self.bytes[mtype] += size_bytes * copies

    def record_bulk(self, mtype: MessageType, total_bytes: int, copies: int) -> None:
        """Count ``copies`` messages totalling ``total_bytes`` (pre-summed).

        Batched round kernels accumulate per-round totals in plain ints and
        flush them here once, instead of one :meth:`record` call per sender.
        """
        if copies < 0 or total_bytes < 0:
            raise ValueError("negative message accounting")
        if copies:
            self.count[mtype] += copies
            self.bytes[mtype] += total_bytes

    def track_population(self, now: float, alive_nodes: int) -> None:
        """Advance the node-seconds integral to ``now``."""
        if not self._started:
            self._window_start = now
            self._started = True
        elif now < self._last_time:
            raise ValueError("time went backwards")
        else:
            self._node_seconds += self._last_nodes * (now - self._last_time)
        self._last_time = now
        self._last_nodes = alive_nodes

    def reset_window(self, now: float, alive_nodes: int) -> None:
        """Start a fresh measurement window (e.g. after warm-up)."""
        for t in MessageType:
            self.count[t] = 0
            self.bytes[t] = 0
        self._node_seconds = 0.0
        self._last_time = now
        self._last_nodes = alive_nodes
        self._window_start = now
        self._started = True

    # -- reporting --------------------------------------------------------------
    def totals(self) -> Tuple[int, int]:
        return sum(self.count.values()), sum(self.bytes.values())

    def rates(self, now: float) -> RateSummary:
        """Figure 8's metrics: averages per node per minute."""
        self.track_population(now, self._last_nodes)
        node_minutes = self._node_seconds / 60.0
        if node_minutes <= 0:
            # Zero-length window (warm-up consumed the whole run, or a smoke
            # run too short to accumulate node-seconds): report zero rates
            # instead of crashing the caller.
            return RateSummary(
                messages_per_node_minute=0.0,
                kbytes_per_node_minute=0.0,
                window_seconds=now - self._window_start,
                node_minutes=0.0,
                by_type={},
            )
        msgs, vol = self.totals()
        return RateSummary(
            messages_per_node_minute=msgs / node_minutes,
            kbytes_per_node_minute=vol / 1024.0 / node_minutes,
            window_seconds=now - self._window_start,
            node_minutes=node_minutes,
            by_type={
                t.value: self.count[t] / node_minutes
                for t in MessageType
                if self.count[t]
            },
        )
