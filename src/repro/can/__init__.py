"""Content-Addressable Network (CAN) DHT substrate.

The CAN variant of Kim et al. / Lee et al.: resource capabilities as
coordinates, KD-style zone splits pinned to node coordinates, split-history
take-over, per-dimension load aggregation, and the three heartbeat schemes
(vanilla / compact / adaptive) this paper contributes.
"""

from .aggregation import AggregationEngine, FIELDS
from .coverage import Face, face_of, find_gaps, has_gap, uncovered_fraction, union_measure
from .geometry import Zone
from .heartbeat import (
    HeartbeatProtocol,
    HeartbeatScheme,
    ProtocolConfig,
    ProtocolNode,
)
from .messages import MessageType, SizeModel
from .neighbor import BeliefRecord, NeighborTable
from .overlay import CanOverlay, JoinResult, OverlayError, Transfer
from .routing import (
    BeliefRouteResult,
    RoutingError,
    route,
    route_on_beliefs,
    zone_distance,
)
from .space import Dimension, ResourceSpace
from .split_tree import Internal, Leaf, SplitTree
from .stats import MessageStats, RateSummary

__all__ = [
    "AggregationEngine",
    "FIELDS",
    "Zone",
    "Face",
    "face_of",
    "find_gaps",
    "has_gap",
    "uncovered_fraction",
    "union_measure",
    "HeartbeatProtocol",
    "HeartbeatScheme",
    "ProtocolConfig",
    "ProtocolNode",
    "MessageType",
    "SizeModel",
    "BeliefRecord",
    "NeighborTable",
    "CanOverlay",
    "JoinResult",
    "OverlayError",
    "Transfer",
    "BeliefRouteResult",
    "RoutingError",
    "route",
    "route_on_beliefs",
    "zone_distance",
    "Dimension",
    "ResourceSpace",
    "Internal",
    "Leaf",
    "SplitTree",
    "MessageStats",
    "RateSummary",
]
