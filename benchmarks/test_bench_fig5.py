"""Figure 5 bench: wait-time CDF vs load, can-het / can-hom / central.

Reduced scale (same load ratio as the paper's 1000-node / 2-4 s setup).
Asserts the figure's qualitative shape: can-het tracks central, can-hom
falls behind as the system gets loaded.
"""

import numpy as np
import pytest

from repro.gridsim import GridSimulation, MatchmakingConfig, cdf_at
from repro.workload import WorkloadPreset

BENCH_PRESET = WorkloadPreset(
    name="bench-fig5",
    nodes=120,
    jobs=1200,
    gpu_slots=2,
    mean_interarrival=25.0,  # heavy load at this node count
    constraint_ratio=0.6,
)


def _run(scheme, interarrival):
    cfg = MatchmakingConfig(
        BENCH_PRESET.with_interarrival(interarrival), scheme=scheme
    )
    return GridSimulation(cfg).run()


@pytest.mark.parametrize("scheme", ["can-het", "can-hom", "central"])
def test_fig5_heavy_load(benchmark, scheme):
    result = benchmark.pedantic(
        _run, args=(scheme, 25.0), iterations=1, rounds=1
    )
    assert result.wait_times.size > 0
    assert result.unplaced_jobs <= BENCH_PRESET.jobs * 0.02


def test_fig5_shape_can_het_tracks_central(benchmark):
    """The paper's headline: decentralized ≈ centralized on the wait CDF."""
    het = benchmark.pedantic(_run, args=("can-het", 25.0), iterations=1, rounds=1)
    hom = _run("can-hom", 25.0)
    central = _run("central", 25.0)
    grid = (0.0, 1000.0, 5000.0, 10000.0)
    het_cdf = cdf_at(het.wait_times, grid)
    hom_cdf = cdf_at(hom.wait_times, grid)
    central_cdf = cdf_at(central.wait_times, grid)
    # can-het within a few points of central everywhere above the 80th pct
    assert np.all(het_cdf >= central_cdf - 0.08)
    # can-hom visibly worse somewhere on the tail
    assert np.any(hom_cdf < het_cdf - 0.03)


def test_fig5_shape_gap_grows_with_load(benchmark):
    """Lighter load -> schemes converge; heavier -> can-hom degrades."""
    heavy_gap = benchmark.pedantic(_mean_gap, args=(25.0,), iterations=1, rounds=1)
    light_gap = _mean_gap(60.0)
    assert heavy_gap > light_gap


def _mean_gap(interarrival):
    het = _run("can-het", interarrival).wait_times.mean()
    hom = _run("can-hom", interarrival).wait_times.mean()
    return hom - het
