"""Figure 7 bench: broken links under high churn, per heartbeat scheme.

Shape assertions: vanilla most resilient, adaptive close behind, compact
clearly worst; links accumulate for compact and level out.
"""

import pytest

from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import ChurnConfig, ChurnSimulation

BENCH = dict(
    initial_nodes=100,
    gpu_slots=2,  # the paper's 11-dimensional CAN
    heartbeat_period=60.0,
    event_gap_mean=15.0,  # several events per heartbeat period: high churn
    leave_mode="fail",
    duration=5_000.0,
)


def _run(scheme):
    return ChurnSimulation(ChurnConfig(scheme=scheme, **BENCH)).run()


@pytest.mark.parametrize("scheme", list(HeartbeatScheme))
def test_fig7_scheme(benchmark, scheme):
    result = benchmark.pedantic(_run, args=(scheme,), iterations=1, rounds=1)
    assert result.broken_links_times.size > 10


def test_fig7_shape_resilience_ordering(benchmark):
    results = {s: _run(s) for s in (HeartbeatScheme.VANILLA, HeartbeatScheme.ADAPTIVE)}
    results[HeartbeatScheme.COMPACT] = benchmark.pedantic(
        _run, args=(HeartbeatScheme.COMPACT,), iterations=1, rounds=1
    )
    vanilla = results[HeartbeatScheme.VANILLA].steady_state_broken_links()
    compact = results[HeartbeatScheme.COMPACT].steady_state_broken_links()
    adaptive = results[HeartbeatScheme.ADAPTIVE].steady_state_broken_links()
    # the paper's ordering: compact clearly worst, adaptive ~ vanilla
    assert compact > 1.5 * max(vanilla, 1e-9)
    assert adaptive <= compact / 1.5
    assert adaptive <= 2.0 * vanilla + 5.0


def test_fig7_shape_compact_accumulates_then_levels(benchmark):
    res = benchmark.pedantic(
        _run, args=(HeartbeatScheme.COMPACT,), iterations=1, rounds=1
    )
    v = res.broken_links_values
    third = len(v) // 3
    early, late = v[:third].mean(), v[-third:].mean()
    assert late > early  # accumulation
    # leveling: the last two thirds differ much less than early-vs-late
    mid = v[third : 2 * third].mean()
    assert abs(late - mid) < (late - early) + 1e-9
