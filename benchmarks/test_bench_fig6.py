"""Figure 6 bench: wait-time CDF vs job constraint ratio.

Shape assertions: at a low ratio (40 %) the three matchmakers nearly
coincide; at a high ratio (80 %) can-hom misdirects jobs while can-het
stays close to central.
"""

import numpy as np
import pytest

from repro.gridsim import GridSimulation, MatchmakingConfig, cdf_at
from repro.workload import WorkloadPreset

BENCH_PRESET = WorkloadPreset(
    name="bench-fig6",
    nodes=120,
    jobs=1200,
    gpu_slots=2,
    mean_interarrival=25.0,
    constraint_ratio=0.6,
)


def _run(scheme, ratio):
    cfg = MatchmakingConfig(
        BENCH_PRESET.with_constraint_ratio(ratio), scheme=scheme
    )
    return GridSimulation(cfg).run()


@pytest.mark.parametrize("ratio", [0.8, 0.6, 0.4])
def test_fig6_can_het(benchmark, ratio):
    result = benchmark.pedantic(
        _run, args=("can-het", ratio), iterations=1, rounds=1
    )
    assert result.constraint_ratio == ratio
    assert result.wait_times.size > 0


def test_fig6_shape_low_ratio_converges(benchmark):
    """At 40 % the matchmaking problem is easy for everyone."""
    het = benchmark.pedantic(_run, args=("can-het", 0.4), iterations=1, rounds=1)
    hom = _run("can-hom", 0.4)
    grid = (0.0, 2000.0, 10000.0)
    gap = np.abs(
        cdf_at(het.wait_times, grid) - cdf_at(hom.wait_times, grid)
    ).max()
    assert gap < 0.15

def test_fig6_shape_high_ratio_separates(benchmark):
    """At 80 % can-het must beat can-hom while staying near central."""
    het = benchmark.pedantic(_run, args=("can-het", 0.8), iterations=1, rounds=1)
    hom = _run("can-hom", 0.8)
    central = _run("central", 0.8)
    assert het.wait_times.mean() < hom.wait_times.mean()
    grid = (0.0, 1000.0, 5000.0, 10000.0)
    het_cdf = cdf_at(het.wait_times, grid)
    central_cdf = cdf_at(central.wait_times, grid)
    assert np.all(het_cdf >= central_cdf - 0.10)
