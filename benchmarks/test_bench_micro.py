"""Micro-benchmarks for the hot substrate operations.

These track the costs that bound full-scale experiment runtime: CAN joins,
greedy routing, heartbeat rounds, aggregation steps, and matchmaking
placements.
"""

import numpy as np
import pytest

from repro.can.aggregation import AggregationEngine
from repro.can.heartbeat import HeartbeatProtocol, HeartbeatScheme, ProtocolConfig
from repro.can.overlay import CanOverlay
from repro.can.routing import route
from repro.can.space import ResourceSpace
from repro.gridsim import GridSimulation, MatchmakingConfig
from repro.model.node import GridNode
from repro.sim.core import Environment
from repro.workload import TINY_LOAD, generate_node_specs
from repro.workload.jobs import generate_jobs


def build_overlay(n=300, gpu_slots=2, seed=0):
    space = ResourceSpace(gpu_slots=gpu_slots)
    overlay = CanOverlay(space)
    rng = np.random.default_rng(seed)
    specs = generate_node_specs(n, gpu_slots, rng)
    for spec in specs:
        overlay.add_node(
            spec.node_id, space.node_coordinate(spec, float(rng.random()))
        )
    return overlay, specs


def test_bench_can_join_300_nodes(benchmark):
    benchmark.pedantic(build_overlay, kwargs={"n": 300}, iterations=1, rounds=3)


def test_bench_greedy_routing(benchmark):
    overlay, _ = build_overlay(300)
    rng = np.random.default_rng(1)
    points = [tuple(rng.random(overlay.space.dims) * 0.99) for _ in range(50)]

    def route_all():
        for p in points:
            route(overlay, 0, p)

    benchmark(route_all)


def build_ring(n=300, gpu_slots=2, seed=0):
    from repro.chord import ChordRing

    space = ResourceSpace(gpu_slots=gpu_slots)
    ring = ChordRing(space)
    rng = np.random.default_rng(seed)
    specs = generate_node_specs(n, gpu_slots, rng)
    for spec in specs:
        ring.add_node(
            spec.node_id, space.node_coordinate(spec, float(rng.random()))
        )
    return ring, specs


def test_bench_chord_routing(benchmark):
    from repro.chord import chord_route

    ring, _ = build_ring(300)
    rng = np.random.default_rng(1)
    starts = [int(s) for s in rng.integers(0, 300, 50)]
    points = [tuple(rng.random(ring.space.dims) * 0.99) for _ in range(50)]

    def route_all():
        for start, p in zip(starts, points):
            chord_route(ring, start, p)

    benchmark(route_all)


def test_bench_heartbeat_round_vanilla(benchmark):
    space = ResourceSpace(gpu_slots=2)
    overlay = CanOverlay(space)
    proto = HeartbeatProtocol(
        overlay, ProtocolConfig(scheme=HeartbeatScheme.VANILLA)
    )
    rng = np.random.default_rng(3)
    specs = generate_node_specs(200, 2, rng)
    proto.bootstrap(
        specs[0].node_id, space.node_coordinate(specs[0], float(rng.random()))
    )
    for spec in specs[1:]:
        proto.join(
            spec.node_id,
            space.node_coordinate(spec, float(rng.random())),
            now=0.0,
        )

    t = [60.0]

    def one_round():
        proto.run_round(t[0])
        t[0] += 60.0

    benchmark(one_round)


def test_bench_aggregation_step(benchmark):
    overlay, specs = build_overlay(300)
    env = Environment()
    grid = {s.node_id: GridNode(s, env) for s in specs}
    engine = AggregationEngine(overlay, grid)
    engine.step()  # build topology caches once
    benchmark(engine.step)


def test_bench_matchmaking_placement(benchmark):
    sim = GridSimulation(MatchmakingConfig(TINY_LOAD, scheme="can-het"))
    sim.aggregation.run_rounds(3)
    jobs = iter(sim.jobs * 50)

    def place():
        sim.matchmaker.place(next(jobs))

    benchmark(place)


def test_bench_workload_generation(benchmark):
    rng = np.random.default_rng(0)
    specs = generate_node_specs(200, 2, rng)

    def gen():
        generate_jobs(500, specs, 2, 3.0, np.random.default_rng(1))

    benchmark.pedantic(gen, iterations=1, rounds=3)
