"""Figure 8 bench: maintenance cost vs CAN dimensionality.

Shape assertions: message *count* similar for all schemes and roughly
linear in d; message *volume* grows much faster for vanilla (O(d²)) than
for compact/adaptive (O(d)); both metrics insensitive to node count.
"""

import numpy as np
import pytest

from repro.can.heartbeat import HeartbeatScheme
from repro.gridsim import ChurnConfig, ChurnSimulation

GPU_SLOT_SWEEP = (0, 1, 2, 3)  # 5, 8, 11, 14 dims


def _run(scheme, nodes=80, gpu_slots=2, duration=1200.0):
    cfg = ChurnConfig(
        initial_nodes=nodes,
        gpu_slots=gpu_slots,
        scheme=scheme,
        heartbeat_period=60.0,
        event_gap_mean=120.0,  # slow churn: the cost-measurement regime
        leave_mode="fail",
        duration=duration,
    )
    return ChurnSimulation(cfg).run()


@pytest.mark.parametrize("scheme", list(HeartbeatScheme))
def test_fig8_cost_run(benchmark, scheme):
    result = benchmark.pedantic(_run, args=(scheme,), iterations=1, rounds=1)
    assert result.rates.messages_per_node_minute > 0


def _sweep(scheme):
    counts, volumes = [], []
    for g in GPU_SLOT_SWEEP:
        r = _run(scheme, gpu_slots=g)
        counts.append(r.rates.messages_per_node_minute)
        volumes.append(r.rates.kbytes_per_node_minute)
    return np.array(counts), np.array(volumes)


def test_fig8a_shape_counts_similar_and_growing(benchmark):
    counts = {
        s: _sweep(s)[0]
        for s in (HeartbeatScheme.COMPACT, HeartbeatScheme.ADAPTIVE)
    }
    counts[HeartbeatScheme.VANILLA] = benchmark.pedantic(
        lambda: _sweep(HeartbeatScheme.VANILLA)[0], iterations=1, rounds=1
    )
    for s, c in counts.items():
        assert c[-1] > c[0], f"{s}: count must grow with dimensions"
    vanilla = counts[HeartbeatScheme.VANILLA]
    for s, c in counts.items():
        assert np.all(np.abs(c - vanilla) / vanilla < 0.35), (
            f"{s}: message count diverged from vanilla"
        )


def test_fig8b_shape_vanilla_superlinear_compact_linear(benchmark):
    vanilla_vol = benchmark.pedantic(
        lambda: _sweep(HeartbeatScheme.VANILLA)[1], iterations=1, rounds=1
    )
    _, compact_vol = _sweep(HeartbeatScheme.COMPACT)
    # vanilla grows much faster than compact across the dimension sweep
    vanilla_growth = vanilla_vol[-1] / vanilla_vol[0]
    compact_growth = compact_vol[-1] / compact_vol[0]
    assert vanilla_growth > compact_growth
    # and the absolute gap widens with dimensions
    gap = vanilla_vol - compact_vol
    assert np.all(np.diff(gap) > 0)
    # vanilla is far above compact at the paper's 11-/14-d configurations
    assert vanilla_vol[-1] > 4 * compact_vol[-1]


def test_fig8_insensitive_to_node_count(benchmark):
    # Per-node cost tracks the CAN degree, which grows like log2(n) until
    # n reaches 2^d — so strict insensitivity only appears between large
    # sizes.  Doubling from 400 to 800 must move per-node volume by well
    # under the 2x that per-system scaling would produce.
    small = benchmark.pedantic(
        _run, args=(HeartbeatScheme.COMPACT,), kwargs={"nodes": 400},
        iterations=1, rounds=1,
    )
    large = _run(HeartbeatScheme.COMPACT, nodes=800)
    a = small.rates.kbytes_per_node_minute
    b = large.rates.kbytes_per_node_minute
    assert abs(a - b) / max(a, b) < 0.35
