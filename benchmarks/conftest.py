"""Benchmark-suite configuration.

Each ``test_bench_*`` module regenerates one of the paper's evaluation
figures at a reduced-but-structurally-identical scale (pytest-benchmark
measures wall time; the assertions check the paper's qualitative shape).
Full-scale regeneration is ``python -m repro.experiments <figure>``.

When the run is invoked with ``--benchmark-json=<path>``, the hook below
additionally exports the results in the repo's BENCH schema (see
:mod:`repro.obs.bench`) as ``<path stem>.bench.json`` next to it, so
pytest-benchmark numbers feed the same ``python -m repro.obs compare``
regression gate as the canonical ``python -m repro.obs bench`` suite.
"""

import os

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.benchmark)


def pytest_benchmark_update_json(config, benchmarks, output_json):
    """Mirror pytest-benchmark's ``--benchmark-json`` into BENCH schema."""
    from repro.analysis.export import write_json
    from repro.obs.bench import bench_payload_from_pytest

    target = config.getoption("benchmark_json", None)
    if target is None:
        return
    # --benchmark-json is an argparse FileType: a file object with .name
    path = getattr(target, "name", str(target))
    stem, _ = os.path.splitext(path)
    write_json(stem + ".bench.json", bench_payload_from_pytest(output_json))
