"""Benchmark-suite configuration.

Each ``test_bench_*`` module regenerates one of the paper's evaluation
figures at a reduced-but-structurally-identical scale (pytest-benchmark
measures wall time; the assertions check the paper's qualitative shape).
Full-scale regeneration is ``python -m repro.experiments <figure>``.
"""

import pytest


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.benchmark)
